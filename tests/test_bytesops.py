"""Unit tests for byte/bit utilities — the DC-net's arithmetic substrate."""

import pytest

from repro.util import bytesops as B


class TestXorBytes:
    def test_self_inverse(self):
        a, b = b"\x12\x34\x56", b"\xff\x00\xaa"
        assert B.xor_bytes(B.xor_bytes(a, b), b) == a

    def test_identity_with_zeros(self):
        a = b"\xde\xad\xbe\xef"
        assert B.xor_bytes(a, bytes(4)) == a

    def test_commutative(self):
        a, b = b"\x01\x02", b"\x03\x04"
        assert B.xor_bytes(a, b) == B.xor_bytes(b, a)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            B.xor_bytes(b"\x00", b"\x00\x00")

    def test_empty(self):
        assert B.xor_bytes(b"", b"") == b""

    def test_leading_zeros_preserved(self):
        a = b"\x00\x00\x01"
        b = b"\x00\x00\x01"
        assert B.xor_bytes(a, b) == b"\x00\x00\x00"


class TestXorMany:
    def test_pairs_cancel(self):
        ops = [b"\xaa\xbb", b"\x11\x22", b"\xaa\xbb", b"\x11\x22"]
        assert B.xor_many(ops) == b"\x00\x00"

    def test_single_operand(self):
        assert B.xor_many([b"\x42"]) == b"\x42"

    def test_empty_with_length(self):
        assert B.xor_many([], length=3) == b"\x00\x00\x00"

    def test_empty_without_length_raises(self):
        with pytest.raises(ValueError):
            B.xor_many([])

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            B.xor_many([b"\x00\x00", b"\x00"])

    def test_generator_input(self):
        assert B.xor_many(bytes([i]) for i in range(4)) == bytes([0 ^ 1 ^ 2 ^ 3])


class TestBitOps:
    def test_get_bit_msb_first(self):
        # 0x80 = bit 0 set; 0x01 = bit 7 set.
        assert B.get_bit(b"\x80", 0) == 1
        assert B.get_bit(b"\x01", 7) == 1
        assert B.get_bit(b"\x01", 0) == 0

    def test_get_bit_second_byte(self):
        assert B.get_bit(b"\x00\x80", 8) == 1

    def test_get_bit_out_of_range(self):
        with pytest.raises(IndexError):
            B.get_bit(b"\x00", 8)

    def test_set_bit_roundtrip(self):
        data = bytes(4)
        for index in (0, 7, 8, 31):
            assert B.get_bit(B.set_bit(data, index, 1), index) == 1

    def test_set_bit_clear(self):
        data = b"\xff"
        assert B.set_bit(data, 3, 0) == bytes([0b11101111])

    def test_set_bit_bad_value(self):
        with pytest.raises(ValueError):
            B.set_bit(b"\x00", 0, 2)

    def test_set_bit_does_not_mutate(self):
        data = bytes(2)
        B.set_bit(data, 5, 1)
        assert data == bytes(2)

    def test_flip_bit_twice_is_identity(self):
        data = b"\x5a\xa5"
        assert B.flip_bit(B.flip_bit(data, 9), 9) == data

    def test_flip_bit_changes_exactly_one(self):
        data = bytes(3)
        flipped = B.flip_bit(data, 13)
        diffs = [i for i in range(24) if B.get_bit(flipped, i) != B.get_bit(data, i)]
        assert diffs == [13]


class TestHelpers:
    def test_bit_length_to_bytes(self):
        assert B.bit_length_to_bytes(0) == 0
        assert B.bit_length_to_bytes(1) == 1
        assert B.bit_length_to_bytes(8) == 1
        assert B.bit_length_to_bytes(9) == 2

    def test_bit_length_negative(self):
        with pytest.raises(ValueError):
            B.bit_length_to_bytes(-1)

    def test_zero_bytes(self):
        assert B.zero_bytes(5) == b"\x00" * 5

    def test_hamming_weight(self):
        assert B.hamming_weight(b"\x00\x00") == 0
        assert B.hamming_weight(b"\xff") == 8
        assert B.hamming_weight(b"\x0f\xf0") == 8

    def test_first_difference_none(self):
        assert B.first_difference(b"\xab\xcd", b"\xab\xcd") is None

    def test_first_difference_position(self):
        a = bytes(2)
        b = B.flip_bit(a, 11)
        assert B.first_difference(a, b) == 11

    def test_first_difference_earliest(self):
        a = bytes(2)
        b = B.flip_bit(B.flip_bit(a, 3), 12)
        assert B.first_difference(a, b) == 3
