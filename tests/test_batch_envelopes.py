"""Adversarial tests for batched envelope signature verification.

The contract under test: batching is a pure performance optimization —
accept/reject decisions and blame are bit-identical to verifying every
envelope one at a time, for forged signatures, replays, and degenerate
batch sizes alike.
"""

import dataclasses
import random

import pytest

from tests.helpers import fresh_session
from repro.crypto import schnorr
from repro.crypto.groups import testing_group as toy_group
from repro.crypto.keys import PrivateKey
from repro.errors import InvalidSignature, ShuffleError
from repro.net.message import (
    CLIENT_CIPHERTEXT,
    batch_verify_envelopes,
    make_envelope,
    require_envelopes_valid,
)


def _envelope_batch(count, seed=5):
    """``count`` well-signed client envelopes under distinct keys."""
    group = toy_group()
    rng = random.Random(seed)
    keys = [PrivateKey.generate(group, rng) for _ in range(count)]
    items = []
    for i, key in enumerate(keys):
        envelope = make_envelope(
            key, CLIENT_CIPHERTEXT, f"client-{i}", b"gid", 4, b"body-%d" % i
        )
        items.append((envelope, key.public))
    return items


class TestBatchVerifyEnvelopes:
    def test_clean_batch_accepts(self):
        assert batch_verify_envelopes(_envelope_batch(12)) == ()

    def test_one_forgery_in_32_bisected_to_exact_sender(self):
        items = _envelope_batch(32)
        envelope, key = items[17]
        items[17] = (dataclasses.replace(envelope, body=b"forged"), key)
        assert batch_verify_envelopes(items) == (17,)

    def test_multiple_forgeries_all_named(self):
        items = _envelope_batch(32)
        for i in (0, 13, 31):
            envelope, key = items[i]
            items[i] = (dataclasses.replace(envelope, body=b"forged"), key)
        assert batch_verify_envelopes(items) == (0, 13, 31)

    def test_blame_matches_scalar_verification_exactly(self):
        rng = random.Random(99)
        for _ in range(5):
            items = _envelope_batch(16, seed=rng.randrange(1 << 30))
            bad = set(rng.sample(range(16), rng.randrange(0, 5)))
            for i in bad:
                envelope, key = items[i]
                items[i] = (
                    dataclasses.replace(envelope, round_number=9),
                    key,
                )
            scalar = tuple(
                i
                for i, (envelope, key) in enumerate(items)
                if not schnorr.verify(
                    key, envelope.signed_payload(), envelope.signature
                )
            )
            assert batch_verify_envelopes(items) == scalar == tuple(sorted(bad))

    def test_empty_batch(self):
        assert batch_verify_envelopes([]) == ()

    def test_single_envelope_degrades_to_scalar(self):
        items = _envelope_batch(1)
        assert batch_verify_envelopes(items) == ()
        envelope, key = items[0]
        assert batch_verify_envelopes(
            [(dataclasses.replace(envelope, sender="client-9"), key)]
        ) == (0,)

    def test_require_envelopes_valid_names_sender(self):
        items = _envelope_batch(8)
        envelope, key = items[3]
        items[3] = (dataclasses.replace(envelope, body=b"evil"), key)
        with pytest.raises(InvalidSignature, match="client-3"):
            require_envelopes_valid(items)


class TestServerBatchAccept:
    def test_forged_submission_rejected_others_kept(self):
        session = fresh_session(seed=41)
        server = session.servers[0]
        server.open_round(0)
        envelopes = [
            session.clients[i].produce_ciphertext(0)
            for i in range(session.definition.num_clients)
        ]
        envelopes[2] = dataclasses.replace(
            envelopes[2], body=bytes(len(envelopes[2].body))
        )
        verdicts = server.accept_ciphertexts(envelopes)
        assert verdicts == [True, True, False, True, True]
        assert sorted(server.state.received) == [0, 1, 3, 4]
        server.abandon_round()

    def test_replayed_stale_round_envelope_rejected(self):
        # A validly signed envelope from round 0 replayed into round 1 is
        # screened out by its round number before any signature work.
        session = fresh_session(seed=42)
        session.run_round()
        stale = session.clients[0].produce_ciphertext(0)  # signs round 0
        server = session.servers[0]
        server.open_round(1)
        fresh = session.clients[1].produce_ciphertext(1)
        assert server.accept_ciphertexts([stale, fresh]) == [False, True]
        assert sorted(server.state.received) == [1]
        server.abandon_round()

    def test_empty_batch_is_noop(self):
        session = fresh_session(seed=43)
        server = session.servers[0]
        server.open_round(0)
        assert server.accept_ciphertexts([]) == []
        assert server.state.received == {}
        server.abandon_round()

    def test_forged_peer_commitment_names_server(self):
        session = fresh_session(seed=44)
        for server in session.servers:
            server.open_round(0)
        for i, client in enumerate(session.clients):
            session.servers[i % 3].accept_ciphertext(client.produce_ciphertext(0))
        inventories = [s.make_inventory() for s in session.servers]
        for s in session.servers:
            s.receive_inventories(inventories)
        commits = [s.compute_ciphertext() for s in session.servers]
        commits[1] = dataclasses.replace(commits[1], body=b"\x00" * 32)
        with pytest.raises(InvalidSignature, match="server-1"):
            session.servers[0].receive_commitments(commits)


class TestShuffleSubmissionBatch:
    @staticmethod
    def _shuffle_setup(session, purpose):
        from repro.core.keyshuffle import make_session_key, verify_session_keys

        session_keys = []
        for j, server in enumerate(session.servers):
            _, sk = make_session_key(server.key, j, purpose)
            session_keys.append(sk)
        return verify_session_keys(session.definition, session_keys, purpose)

    def test_forged_shuffle_submission_named(self):
        from repro.core.keyshuffle import open_shuffle_submissions, shuffle_run_id

        session = fresh_session(seed=45)
        purpose = b"dissent.key-shuffle|" + session.definition.group_id()
        publics = self._shuffle_setup(session, purpose)
        run_id = shuffle_run_id(purpose, publics)
        envelopes = [
            client.signed_scheduling_submission(publics, purpose)
            for client in session.clients
        ]
        sane = open_shuffle_submissions(session.definition, envelopes, run_id)
        assert len(sane) == session.definition.num_clients
        envelopes[4] = dataclasses.replace(envelopes[4], body=envelopes[3].body)
        with pytest.raises(ShuffleError, match="client-4"):
            open_shuffle_submissions(session.definition, envelopes, run_id)

    def test_malformed_body_attributed_to_signer(self):
        # A validly signed but undecodable body must raise a ShuffleError
        # naming the sender, not escape as an unattributed crypto error.
        from repro.core.keyshuffle import (
            SCHEDULING_ROUND,
            SHUFFLE_SUBMISSION,
            open_shuffle_submissions,
            shuffle_run_id,
        )
        from repro.util.serialization import pack_fields

        session = fresh_session(seed=47)
        purpose = b"dissent.key-shuffle|" + session.definition.group_id()
        publics = self._shuffle_setup(session, purpose)
        run_id = shuffle_run_id(purpose, publics)
        envelopes = [
            client.signed_scheduling_submission(publics, purpose)
            for client in session.clients
        ]
        bad_client = session.clients[2]
        envelopes[2] = make_envelope(
            bad_client.key,
            SHUFFLE_SUBMISSION,
            bad_client.name,
            bad_client.group_id,
            SCHEDULING_ROUND,
            pack_fields(run_id, pack_fields(b"\x00" * 10)),
        )
        with pytest.raises(ShuffleError, match="client-2"):
            open_shuffle_submissions(session.definition, envelopes, run_id)

    def test_submission_from_previous_run_rejected(self):
        # The group id and purpose repeat across sessions of one group;
        # the ephemeral mix keys do not.  A validly signed submission
        # captured in run A must not open in run B.
        from repro.core.keyshuffle import open_shuffle_submissions, shuffle_run_id

        session = fresh_session(seed=46)
        purpose = b"dissent.key-shuffle|" + session.definition.group_id()
        old_publics = self._shuffle_setup(session, purpose)
        stale = session.clients[0].signed_scheduling_submission(
            old_publics, purpose
        )
        new_publics = self._shuffle_setup(session, purpose)
        new_run = shuffle_run_id(purpose, new_publics)
        envelopes = [stale] + [
            client.signed_scheduling_submission(new_publics, purpose)
            for client in session.clients[1:]
        ]
        with pytest.raises(ShuffleError, match="different run"):
            open_shuffle_submissions(session.definition, envelopes, new_run)
