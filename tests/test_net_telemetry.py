"""Networked telemetry: TELEMETRY wire codec, merged views, parity.

The merged :meth:`NetworkedSession.metrics` view must work in every
transport mode, and telemetry must never perturb protocol bytes — the
same seed yields bit-identical records and deliveries with tracing on,
off, and in-process.
"""

import pytest

from repro.errors import WireDecodeError
from repro.net.runner import NetworkedSession
from repro.net.wire import decode_telemetry_body, encode_telemetry_body
from repro.obs import MetricsRegistry

from tests.test_networked_session import build_matched_inprocess, drive_honest


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------


class TestTelemetryCodec:
    def test_snapshot_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("net.sent.frames.total").inc(12)
        registry.gauge("net.early.depth").set_max(3)
        registry.histogram("span.phase.commit", (0.001, 0.01)).observe(0.004)
        snapshot = registry.snapshot()
        assert decode_telemetry_body(encode_telemetry_body(snapshot)) == snapshot

    def test_merged_after_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        body = encode_telemetry_body(registry.snapshot())
        merged = MetricsRegistry()
        merged.merge_snapshot(decode_telemetry_body(body))
        merged.merge_snapshot(decode_telemetry_body(body))
        assert merged.snapshot()["counters"]["c"] == 10

    def test_decode_rejects_garbage(self):
        with pytest.raises(WireDecodeError):
            decode_telemetry_body(b"\xff\xfe not json")
        with pytest.raises(WireDecodeError):
            decode_telemetry_body(b"[1, 2, 3]")
        with pytest.raises(WireDecodeError):
            decode_telemetry_body(b'"just a string"')

    def test_encode_rejects_unserializable(self):
        with pytest.raises(WireDecodeError):
            encode_telemetry_body({"bad": object()})


# ---------------------------------------------------------------------------
# Merged cross-process view, per mode
# ---------------------------------------------------------------------------


def _assert_merged_view(snapshot, num_servers, num_clients, rounds):
    counters = snapshot["counters"]
    histograms = snapshot["histograms"]
    # Per-phase latency histograms from every server's round engine.
    for phase in ("submit", "inventory", "commit", "reveal", "verify", "output"):
        assert histograms[f"span.phase.{phase}"]["count"] == num_servers * rounds
    # Client build timings merge in too.
    assert histograms["span.phase.build"]["count"] == num_clients * rounds
    # Per-envelope-type byte accounting crossed the wire and summed.
    for kind in ("client-ciphertext", "server-commit", "server-reveal"):
        assert counters[f"net.sent.bytes.{kind}"] > 0
        assert counters[f"net.sent.frames.{kind}"] > 0
        assert histograms[f"net.arrival.{kind}"]["count"] > 0
    assert counters["net.sent.bytes.total"] > counters["net.sent.bytes.client-ciphertext"]
    # Coordinator-side session counters are part of the same view.
    assert counters["session.rounds_completed"] == rounds
    assert counters["net.coord.sent.frames"] > 0


class TestMergedMetrics:
    def test_loopback_merged_view(self):
        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=99, mode="loopback"
        ) as session:
            session.setup()
            session.post(0, b"count me")
            session.run_rounds(2)
            snapshot = session.metrics()
        _assert_merged_view(snapshot, num_servers=2, num_clients=3, rounds=2)

    def test_tcp_merged_view(self):
        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=99, mode="tcp"
        ) as session:
            session.setup()
            session.post(0, b"count me")
            session.run_rounds(2)
            snapshot = session.metrics()
        _assert_merged_view(snapshot, num_servers=2, num_clients=3, rounds=2)

    def test_subprocess_merged_view_includes_crypto(self):
        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=99, mode="subprocess"
        ) as session:
            session.setup()
            session.post(0, b"count me")
            session.run_rounds(1)
            snapshot = session.metrics()
        _assert_merged_view(snapshot, num_servers=2, num_clients=3, rounds=1)
        # Child processes install their registry as process-global, so
        # crypto hot-path counters ship back inside the same snapshot.
        assert snapshot["counters"]["crypto.fixed_base.exps"] > 0
        assert snapshot["counters"]["crypto.multiexp.calls"] > 0

    def test_metrics_disabled_returns_empty_without_wire_traffic(self):
        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=99, telemetry=False
        ) as session:
            session.setup()
            session.run_rounds(1)
            snapshot = session.metrics()
        assert snapshot["counters"] == {}
        assert snapshot["histograms"] == {}
        assert session.tracer.events == ()


# ---------------------------------------------------------------------------
# Parity: tracing must never change protocol bytes
# ---------------------------------------------------------------------------


class TestTracingParity:
    @pytest.mark.parametrize("mode", ["loopback", "tcp"])
    def test_bit_identical_tracing_on_vs_off(self, mode):
        expected = drive_honest(build_matched_inprocess(seed=2012))
        results = {}
        for telemetry in (False, True):
            with NetworkedSession.build(
                seed=2012, mode=mode, telemetry=telemetry
            ) as session:
                results[telemetry] = drive_honest(session)
        assert results[True] == results[False] == expected
