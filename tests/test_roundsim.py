"""Unit tests for the round timing simulator and cost model."""

import random

import pytest

from repro.sim.costmodel import CostModel, DEFAULT_COST_MODEL
from repro.sim.network import deterlab_topology
from repro.sim.roundsim import (
    RoundSimConfig,
    Workload,
    mean_timing,
    simulate_full_protocol,
    simulate_round,
    simulate_rounds,
)


class TestWorkload:
    def test_microblog_sender_count(self):
        w = Workload.microblog(1000)
        assert len(w.open_slot_payloads) == 10

    def test_microblog_at_least_one_sender(self):
        assert len(Workload.microblog(32).open_slot_payloads) >= 1

    def test_data_sharing_single_slot(self):
        w = Workload.data_sharing()
        assert w.open_slot_payloads == (128 * 1024,)

    def test_round_bytes_matches_layout_rules(self):
        from repro.core.schedule import open_slot_bytes

        w = Workload("x", (128, 256))
        expected = (100 + 7) // 8 + open_slot_bytes(128) + open_slot_bytes(256)
        assert w.round_bytes(100) == expected


class TestCostModel:
    def test_prng_scales_with_bytes(self):
        cm = DEFAULT_COST_MODEL
        assert cm.prng_time(2_000_000) == pytest.approx(2 * cm.prng_time(1_000_000))

    def test_cores_divide_stream_time(self):
        cm = DEFAULT_COST_MODEL
        assert cm.prng_time(1_000_000, cores=4) == pytest.approx(
            cm.prng_time(1_000_000) / 4
        )

    def test_client_compute_linear_in_servers(self):
        cm = DEFAULT_COST_MODEL
        t8 = cm.client_submission_compute(1000, 8)
        t32 = cm.client_submission_compute(1000, 32)
        assert t32 > t8

    def test_key_shuffle_linear_in_clients(self):
        cm = DEFAULT_COST_MODEL
        assert cm.key_shuffle_time(1000, 24) > 9 * cm.key_shuffle_time(100, 24)

    def test_message_shuffle_costlier_than_key(self):
        cm = DEFAULT_COST_MODEL
        assert cm.message_shuffle_time(100, 8) > 5 * cm.key_shuffle_time(100, 8)

    def test_scaled_machine(self):
        slow = DEFAULT_COST_MODEL.scaled(2.0)
        assert slow.prng_time(1000) == pytest.approx(2 * DEFAULT_COST_MODEL.prng_time(1000))
        assert slow.sign_seconds == pytest.approx(2 * DEFAULT_COST_MODEL.sign_seconds)


class TestSimulateRound:
    def _config(self, n=100, m=8, workload=None, **kwargs):
        return RoundSimConfig(
            num_clients=n,
            num_servers=m,
            workload=workload or Workload.microblog(n),
            topology=deterlab_topology(),
            **kwargs,
        )

    def test_timing_positive(self):
        timing = simulate_round(self._config(), random.Random(1))
        assert timing.client_submission > 0
        assert timing.server_processing > 0
        assert timing.total == pytest.approx(
            timing.client_submission + timing.server_processing
        )

    def test_more_clients_slower(self):
        small = simulate_round(self._config(n=64), random.Random(1))
        large = simulate_round(self._config(n=4096), random.Random(1))
        assert large.total > small.total

    def test_data_sharing_slower_than_microblog(self):
        micro = simulate_round(self._config(), random.Random(1))
        share = simulate_round(
            self._config(workload=Workload.data_sharing()), random.Random(1)
        )
        assert share.total > micro.total

    def test_contention_slows_clients(self):
        free = simulate_round(self._config(n=640), random.Random(1))
        packed = simulate_round(
            self._config(n=640, client_machines=40), random.Random(1)
        )
        assert packed.client_submission > free.client_submission

    def test_mean_timing(self):
        timings = simulate_rounds(self._config(), 5, seed=3)
        mean = mean_timing(timings)
        assert min(t.total for t in timings) <= mean.total <= max(t.total for t in timings)

    def test_mean_timing_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_timing([])

    def test_deterministic_given_seed(self):
        a = simulate_rounds(self._config(), 3, seed=9)
        b = simulate_rounds(self._config(), 3, seed=9)
        assert [t.total for t in a] == [t.total for t in b]


class TestFullProtocol:
    def test_stage_ordering_matches_paper(self):
        times = simulate_full_protocol(500, 24)
        # Blame shuffle >> key shuffle >> DC-net round (Figure 9 shape).
        assert times.blame_shuffle > times.key_shuffle > times.dcnet_round

    def test_blame_shuffle_exceeds_hour_at_1000(self):
        times = simulate_full_protocol(1000, 24)
        assert times.blame_shuffle > 3600

    def test_stages_grow_with_clients(self):
        small = simulate_full_protocol(24, 24)
        large = simulate_full_protocol(1000, 24)
        assert large.key_shuffle > small.key_shuffle
        assert large.blame_shuffle > small.blame_shuffle
        assert large.blame_evaluation > small.blame_evaluation


class TestDisruptionRecoveryModel:
    def test_batched_hybrid_blame_cheaper_than_unbatched(self):
        from repro.sim.roundsim import simulate_disruption_recovery

        batched = simulate_disruption_recovery(1024, 8, "hybrid", batched=True)
        unbatched = simulate_disruption_recovery(1024, 8, "hybrid", batched=False)
        assert batched.blame < unbatched.blame
        assert batched.detection == unbatched.detection

    def test_batched_verifiable_tax_shrinks(self):
        from repro.sim.roundsim import simulate_disruption_recovery

        batched = simulate_disruption_recovery(512, 8, "verifiable", batched=True)
        unbatched = simulate_disruption_recovery(512, 8, "verifiable", batched=False)
        assert (
            batched.verifiable_overhead_per_round
            < unbatched.verifiable_overhead_per_round
        )

    def test_xor_model_ignores_batching_flag(self):
        from repro.sim.roundsim import simulate_disruption_recovery

        a = simulate_disruption_recovery(256, 4, "xor", batched=True)
        b = simulate_disruption_recovery(256, 4, "xor", batched=False)
        assert a == b


class TestHybridChurnScenario:
    def test_trace_shape_and_accounting(self):
        from repro.sim.roundsim import simulate_hybrid_churn

        trace = simulate_hybrid_churn(
            256, 4, rounds=10, disruption_prob=0.3, seed=1
        )
        assert len(trace.rounds) == 10
        assert all(r.online_clients >= 4 for r in trace.rounds)
        assert all(r.round_time > 0 for r in trace.rounds)
        for r in trace.rounds:
            assert (r.blame_time > 0) == r.corrupted
        assert trace.total_time == pytest.approx(
            sum(r.round_time + r.blame_time for r in trace.rounds)
        )

    def test_population_churns(self):
        from repro.sim.churn import SessionChurnModel
        from repro.sim.roundsim import simulate_hybrid_churn

        trace = simulate_hybrid_churn(
            512,
            8,
            rounds=12,
            churn=SessionChurnModel(
                mean_session_rounds=3.0, mean_offline_rounds=2.0
            ),
            disruption_prob=0.0,
            seed=2,
        )
        populations = {r.online_clients for r in trace.rounds}
        assert len(populations) > 1  # the online set actually moved
        assert trace.corrupted_rounds == 0
        assert trace.mean_time_to_blame == 0.0

    def test_clean_run_has_no_blame_cost(self):
        from repro.sim.roundsim import simulate_hybrid_churn

        trace = simulate_hybrid_churn(
            128, 4, rounds=6, disruption_prob=0.0, seed=4
        )
        assert all(r.blame_time == 0.0 for r in trace.rounds)
        assert trace.total_time == pytest.approx(
            sum(r.round_time for r in trace.rounds)
        )
