"""Unit tests for group definitions and policy validation."""

import pytest

from repro.core.config import GroupDefinition, Policy, make_group_definition
from repro.crypto.keys import PrivateKey
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def keys(group):
    import random

    rng = random.Random(31)
    return [PrivateKey.generate(group, rng) for _ in range(6)]


def _definition(keys, policy=None):
    return make_group_definition(
        "test-256",
        [k.public for k in keys[:2]],
        [k.public for k in keys[2:]],
        policy,
    )


class TestPolicy:
    def test_defaults_valid(self):
        Policy()

    def test_alpha_bounds(self):
        with pytest.raises(ConfigError):
            Policy(alpha=1.5)
        with pytest.raises(ConfigError):
            Policy(alpha=-0.1)

    def test_shuffle_request_bits_bounds(self):
        with pytest.raises(ConfigError):
            Policy(shuffle_request_bits=0)
        with pytest.raises(ConfigError):
            Policy(shuffle_request_bits=9)

    def test_window_multiplier_floor(self):
        with pytest.raises(ConfigError):
            Policy(window_multiplier=0.9)

    def test_slot_payload_ordering(self):
        with pytest.raises(ConfigError):
            Policy(initial_slot_payload=1024, max_slot_payload=512)

    def test_dict_roundtrip(self):
        policy = Policy(alpha=0.5, initial_slot_payload=64)
        assert Policy.from_dict(policy.to_dict()) == policy


class TestGroupDefinition:
    def test_counts(self, keys):
        definition = _definition(keys)
        assert definition.num_servers == 2
        assert definition.num_clients == 4

    def test_names(self, keys):
        definition = _definition(keys)
        assert definition.server_name(1) == "server-1"
        assert definition.client_name(3) == "client-3"
        with pytest.raises(ConfigError):
            definition.server_name(2)

    def test_self_certifying_id_stable(self, keys):
        assert _definition(keys).group_id() == _definition(keys).group_id()

    def test_id_changes_with_membership(self, keys):
        a = _definition(keys)
        b = make_group_definition(
            "test-256",
            [k.public for k in keys[:2]],
            [k.public for k in keys[2:5]],  # one fewer client
        )
        assert a.group_id() != b.group_id()

    def test_id_changes_with_policy(self, keys):
        a = _definition(keys)
        b = _definition(keys, Policy(alpha=0.5))
        assert a.group_id() != b.group_id()

    def test_canonical_roundtrip(self, keys):
        definition = _definition(keys, Policy(alpha=0.75))
        parsed = GroupDefinition.from_canonical_bytes(definition.canonical_bytes())
        assert parsed.group_id() == definition.group_id()
        assert parsed.policy.alpha == 0.75

    def test_duplicate_keys_rejected(self, keys):
        with pytest.raises(ConfigError):
            make_group_definition(
                "test-256",
                [keys[0].public, keys[0].public],
                [k.public for k in keys[2:]],
            )

    def test_unknown_group_rejected(self, keys):
        with pytest.raises(ConfigError):
            make_group_definition(
                "nonexistent", [keys[0].public], [keys[1].public]
            )

    def test_empty_memberships_rejected(self, keys):
        with pytest.raises(ConfigError):
            make_group_definition("test-256", [], [keys[0].public])
        with pytest.raises(ConfigError):
            make_group_definition("test-256", [keys[0].public], [])

    def test_malformed_canonical_rejected(self):
        with pytest.raises(ConfigError):
            GroupDefinition.from_canonical_bytes(b"not json")
