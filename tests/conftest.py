"""Shared fixtures: small real-crypto groups and sessions."""

import random

import pytest

from repro.core import DissentSession
from repro.crypto import PrivateKey, testing_group, tiny_group


@pytest.fixture(scope="session")
def group():
    return testing_group()


@pytest.fixture(scope="session")
def tiny():
    return tiny_group()


@pytest.fixture
def rng():
    return random.Random(0xD15537)


@pytest.fixture
def keypair(group, rng):
    return PrivateKey.generate(group, rng)


@pytest.fixture(scope="module")
def small_session():
    """A scheduled 3-server/6-client session shared within a module.

    Module-scoped because the key shuffle costs a few hundred ms; tests
    that mutate session state build their own.
    """
    session = DissentSession.build(num_servers=3, num_clients=6, seed=101)
    session.setup()
    return session

