"""Unit tests for commitments and Fiat-Shamir challenges."""

import pytest

from repro.crypto import hashing as H


class TestCommit:
    def test_verify_roundtrip(self):
        payload = b"server ciphertext bytes"
        assert H.verify_commit(H.commit(payload), payload)

    def test_wrong_payload_fails(self):
        commitment = H.commit(b"original")
        assert not H.verify_commit(commitment, b"tampered")

    def test_commit_deterministic(self):
        assert H.commit(b"x") == H.commit(b"x")

    def test_commit_digest_width(self):
        assert len(H.commit(b"anything")) == H.DIGEST_BYTES

    def test_domain_separated_from_plain_hash(self):
        assert H.commit(b"data") != H.sha256(b"data")


class TestChallengeScalar:
    def test_in_range(self):
        order = 2**127 - 1
        for i in range(20):
            c = H.challenge_scalar(order, bytes([i]))
            assert 0 <= c < order

    def test_deterministic(self):
        assert H.challenge_scalar(997, b"a", b"b") == H.challenge_scalar(997, b"a", b"b")

    def test_sensitive_to_every_part(self):
        base = H.challenge_scalar(2**61 - 1, b"a", b"b")
        assert base != H.challenge_scalar(2**61 - 1, b"a", b"c")
        assert base != H.challenge_scalar(2**61 - 1, b"a")

    def test_part_boundaries_matter(self):
        # ("ab", "") vs ("a", "b") must differ: length-prefixed hashing.
        assert H.challenge_scalar(10**9, b"ab", b"") != H.challenge_scalar(10**9, b"a", b"b")

    def test_tiny_order_rejected(self):
        with pytest.raises(ValueError):
            H.challenge_scalar(1, b"x")


class TestGroupId:
    def test_stable(self):
        assert H.group_definition_id(b"defn") == H.group_definition_id(b"defn")

    def test_distinct(self):
        assert H.group_definition_id(b"a") != H.group_definition_id(b"b")
