"""Tests for the applications: microblog, file sharing, tunnel, browsing."""

import statistics

import pytest

from tests.helpers import fresh_session
from repro.apps import (
    FileSharingApp,
    IsolationViolation,
    MicroblogFeed,
    TorCircuitModel,
    TunnelEntry,
    TunnelExit,
    TunnelRecord,
    WiNoNEnvironment,
    browse_corpus,
    corpus_stats,
    direct_path,
    dissent_path,
    dissent_tor_path,
    fetch_through_tunnel,
    file_digest,
    generate_pages,
    generate_top100,
    microblog_workload,
    seconds_per_megabyte,
    standard_paths,
    tor_path,
)
from repro.apps.filesharing import FileReceiver, chunk_file
from repro.core import Policy


class TestMicroblog:
    def test_posts_reach_feed_with_slot_attribution(self):
        session = fresh_session(seed=61)
        feed = MicroblogFeed(session)
        feed.post(1, "hello world")
        for _ in range(3):
            feed.run_round()
        timeline = feed.timeline()
        assert [p.text for p in timeline] == ["hello world"]
        assert timeline[0].slot_index == session.clients[1].slot
        assert timeline[0].author == f"slot-{session.clients[1].slot}"

    def test_posts_linkable_by_pseudonym(self):
        session = fresh_session(seed=62)
        feed = MicroblogFeed(session)
        feed.post(2, "first")
        for _ in range(3):
            feed.run_round()
        feed.post(2, "second")
        for _ in range(3):
            feed.run_round()
        by_author = feed.by_author(session.clients[2].slot)
        assert [p.text for p in by_author] == ["first", "second"]

    def test_oversize_post_rejected(self):
        session = fresh_session(seed=63)
        feed = MicroblogFeed(session)
        with pytest.raises(ValueError):
            feed.post(0, "x" * 200)

    def test_workload_generator_fraction(self):
        rounds = microblog_workload(1000, 50, submit_fraction=0.01, seed=3)
        counts = [len(r) for r in rounds]
        assert 1 <= min(counts)
        assert statistics.mean(counts) == pytest.approx(10, rel=0.5)

    def test_workload_never_empty(self):
        rounds = microblog_workload(10, 100, submit_fraction=0.01, seed=4)
        assert all(len(r) >= 1 for r in rounds)


class TestFileSharing:
    def test_chunking_roundtrip(self, rng):
        data = bytes(range(256)) * 3
        file_id, chunks = chunk_file(data, 100, rng)
        receiver = FileReceiver()
        done = None
        for chunk in chunks:
            done = receiver.feed(chunk) or done
        assert done == file_id
        assert receiver.completed[file_id] == data

    def test_out_of_order_reassembly(self, rng):
        data = b"abcdefghij" * 50
        file_id, chunks = chunk_file(data, 64, rng)
        receiver = FileReceiver()
        for chunk in reversed(chunks):
            receiver.feed(chunk)
        assert receiver.completed[file_id] == data

    def test_short_garbage_ignored(self):
        receiver = FileReceiver()
        assert receiver.feed(b"short") is None

    def test_end_to_end_share(self):
        session = fresh_session(num_clients=4, seed=64, policy=Policy(alpha=0.0))
        app = FileSharingApp(session, chunk_payload=512)
        data = bytes((i * 7) % 256 for i in range(3000))
        file_id = app.share(0, data)
        received = app.run_until_complete(file_id, max_rounds=32)
        assert received == data
        assert file_digest(received) == file_digest(data)
        # Every member, including non-senders, holds the file.
        for receiver in app.receivers:
            assert receiver.completed[file_id] == data


class TestTunnel:
    def test_record_roundtrip(self):
        record = TunnelRecord(b"12345678", 0, 0, "example.com:80", b"GET /")
        parsed = TunnelRecord.decode(record.encode())
        assert parsed == record

    def test_record_truncation_returns_none(self):
        record = TunnelRecord(b"12345678", 0, 0, "example.com", b"payload")
        assert TunnelRecord.decode(record.encode()[:10]) is None

    def test_anonymous_fetch_roundtrip(self):
        session = fresh_session(num_clients=4, seed=65, policy=Policy(alpha=0.0))
        served = {}

        def web_server(request: bytes) -> bytes:
            served["request"] = request
            return b"<html>response for " + request + b"</html>"

        entry = TunnelEntry(session, client_index=1)
        exit_node = TunnelExit(session, client_index=3, destinations={"site:80": web_server})
        response = fetch_through_tunnel(
            session, entry, exit_node, "site:80", b"GET /index"
        )
        assert response == b"<html>response for GET /index</html>"
        assert served["request"] == b"GET /index"

    def test_unknown_destination_returns_empty(self):
        session = fresh_session(num_clients=4, seed=66, policy=Policy(alpha=0.0))
        entry = TunnelEntry(session, 0)
        exit_node = TunnelExit(session, 2, destinations={})
        flow = entry.open_flow("nowhere:1", b"req")
        for _ in range(6):
            session.run_round()
            exit_node.pump()
            entry.poll()
        assert entry.response(flow) == b""


class TestWebModel:
    def test_deterministic_corpus(self):
        assert generate_top100(1) == generate_top100(1)
        assert generate_top100(1) != generate_top100(2)

    def test_corpus_statistics_2012_like(self):
        stats = corpus_stats(generate_top100())
        assert 0.4e6 < stats["mean_bytes"] < 1.5e6
        assert 10 < stats["mean_requests"] < 60
        assert stats["median_bytes"] < stats["mean_bytes"]  # right-skewed

    def test_page_count(self):
        assert len(generate_pages(37)) == 37


class TestBrowsingPaths:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_top100()

    def test_paper_ordering(self, corpus):
        times = {p.name: browse_corpus(corpus, p) for p in standard_paths()}
        means = {name: statistics.mean(t) for name, t in times.items()}
        assert means["direct"] < means["tor"] < means["dissent+tor"]
        assert means["direct"] < means["dissent"] < means["dissent+tor"]

    def test_seconds_per_megabyte_magnitudes(self, corpus):
        for path, low, high in (
            (direct_path(), 4, 20),
            (tor_path(), 25, 55),
            (dissent_path(), 30, 60),
            (dissent_tor_path(), 40, 75),
        ):
            spm = seconds_per_megabyte(corpus, browse_corpus(corpus, path))
            assert low <= spm <= high, (path.name, spm)

    def test_page_time_monotone_in_size(self):
        from repro.apps.webmodel import PageProfile

        path = tor_path()
        small = PageProfile("s", 10_000, (5_000,))
        large = PageProfile("l", 10_000, (5_000, 400_000))
        assert path.page_time(large) > path.page_time(small)

    def test_parallelism_reduces_latency_cost(self):
        from repro.apps.webmodel import PageProfile

        page = PageProfile("p", 10_000, tuple([8_000] * 24))
        path = tor_path()
        assert path.page_time(page, parallelism=12) < path.page_time(page, parallelism=2)

    def test_tor_circuit_latency(self):
        circuit = TorCircuitModel()
        assert circuit.request_latency() == pytest.approx(2 * 3 * 0.25 + 0.2)


class TestWiNoNIsolation:
    def test_fetch_goes_through_tunnel(self):
        env = WiNoNEnvironment(dissent_path())
        page = generate_top100()[0]
        elapsed = env.fetch(page)
        assert elapsed > 0
        assert env.fetch_log == [(page.name, elapsed)]

    def test_direct_socket_blocked(self):
        env = WiNoNEnvironment(dissent_path())
        with pytest.raises(IsolationViolation):
            env.open_direct_socket("tracker.example:443")

    def test_host_state_unreachable(self):
        env = WiNoNEnvironment(dissent_path())
        with pytest.raises(IsolationViolation):
            env.read_host_state("cookies")
