"""Direct coverage for the Herbivore-style leader baseline (dcnet/leader.py)."""

import pytest

from repro.dcnet import leader as leader_mod
from repro.dcnet.leader import LeaderDcNet
from repro.errors import ProtocolError


class TestLeaderRoundFlow:
    def test_round_delivers_sender_message(self):
        net = LeaderDcNet(5, seed=1)
        message = b"\xa5" * 32
        cleartext = net.run_round(0, 32, sender=2, message=message)
        assert cleartext == message

    def test_silent_round_is_all_zero(self):
        net = LeaderDcNet(4, seed=2)
        assert net.run_round(0, 16) == bytes(16)

    def test_rounds_are_domain_separated(self):
        """Pair streams differ per round, so coin reuse never cancels wrong."""
        net = LeaderDcNet(3, seed=3)
        message = b"\x0f" * 8
        assert net.run_round(0, 8, sender=0, message=message) == message
        assert net.run_round(1, 8, sender=0, message=message) == message

    def test_leader_index_validated(self):
        with pytest.raises(ProtocolError):
            LeaderDcNet(3, seed=4, leader=3)


class TestLeaderDisruption:
    def test_disruptor_corrupts_output_and_stays_anonymous(self):
        net = LeaderDcNet(4, seed=5)
        message = b"\x42" * 24
        cleartext = net.run_round(0, 24, sender=1, message=message, disruptor=3)
        assert cleartext != message
        # The paper's criticism made concrete: the baseline exposes no
        # tracing interface whatsoever — re-forming is the only remedy.
        assert not hasattr(net, "trace")
        assert not hasattr(net, "run_accusation_phase")


class TestMemberDropHandling:
    def test_reform_without_excluded_members(self):
        net = LeaderDcNet(6, seed=6)
        net.run_round(0, 8, sender=0, message=b"\x01" * 8)
        reformed = net.reform_without({2, 4})
        assert reformed.num_members == 4
        # Fresh keys: the re-formed group still completes rounds.
        message = b"\x77" * 8
        assert reformed.run_round(0, 8, sender=1, message=message) == message

    def test_reform_needs_two_survivors(self):
        net = LeaderDcNet(3, seed=7)
        with pytest.raises(ProtocolError):
            net.reform_without({0, 1})

    def test_reform_does_not_mutate_original(self):
        net = LeaderDcNet(4, seed=8)
        net.reform_without({3})
        assert net.num_members == 4
        assert net.run_round(0, 4, sender=0, message=b"abcd") == b"abcd"


class TestCostCounters:
    def test_unicast_accounting_per_round(self):
        n, length = 5, 64
        net = LeaderDcNet(n, seed=9)
        net.run_round(0, length, sender=0, message=b"z" * length)
        member_total = sum(m.counters.messages_sent for m in net.members)
        # Each member unicasts once to the leader.
        assert member_total == n
        assert all(m.counters.bytes_sent == length for m in net.members)
        # The leader broadcasts the combined output to everyone else.
        assert net.leader_counters.messages_sent == n - 1
        assert net.leader_counters.bytes_sent == (n - 1) * length

    def test_prng_cost_is_all_pairs(self):
        """Coin sharing stays O(N) per bit — the cost Dissent removes."""
        n, length = 4, 32
        net = LeaderDcNet(n, seed=10)
        net.run_round(0, length)
        for member in net.members:
            assert member.counters.prng_bytes == (n - 1) * length

    def test_analytic_costs_match_measured_communication(self):
        n, length = 6, 16
        net = LeaderDcNet(n, seed=11)
        net.run_round(0, length)
        predicted = leader_mod.analytic_costs(n, length)
        measured_msgs = (
            sum(m.counters.messages_sent for m in net.members)
            + net.leader_counters.messages_sent
        )
        # The analytic model counts N-1 unicasts in (the leader's own
        # contribution needs no message) — allow for that off-by-one.
        assert predicted.messages_sent in (measured_msgs, measured_msgs - 1)
        assert predicted.prng_bytes == sum(
            m.counters.prng_bytes for m in net.members
        )
