"""Unit tests for the discrete-event engine, network, churn, and trace."""

import math
import random

import pytest

from repro.sim import (
    LanJitterModel,
    LinkSpec,
    SessionChurnModel,
    Simulator,
    StragglerModel,
    TraceConfig,
    deterlab_topology,
    emulab_wifi_topology,
    generate_trace,
    planetlab_topology,
    replay_policy,
)
from repro.core.policy import FractionMultiplierPolicy, WaitForAllPolicy


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_schedule_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(1.0, lambda: fired.append(2))
        sim.run()
        assert fired == [1, 2]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]

    def test_nested_scheduling(self):
        sim = Simulator()
        fired = []
        def outer():
            fired.append(("outer", sim.now))
            sim.schedule(1.0, lambda: fired.append(("inner", sim.now)))
        sim.schedule(1.0, outer)
        sim.run()
        assert fired == [("outer", 1.0), ("inner", 2.0)]

    def test_run_until(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(5.0, lambda: fired.append(5))
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0
        sim.run()
        assert fired == [1, 5]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, lambda: fired.append(1))
        sim.cancel(handle)
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)


class TestNetworkModels:
    def test_transfer_time_formula(self):
        link = LinkSpec(latency_s=0.01, bandwidth_bps=8e6)
        assert link.transfer_time(1000) == pytest.approx(0.01 + 0.001)

    def test_shared_uplink_contention(self):
        topo = deterlab_topology()
        one = topo.clients_to_server_time(1, 10_000)
        many = topo.clients_to_server_time(10, 10_000)
        assert many > one
        assert many - one == pytest.approx(9 * topo.client_uplink.serialization_time(10_000))

    def test_broadcast_scales_with_servers(self):
        topo = deterlab_topology()
        assert topo.server_broadcast_time(4, 1000) < topo.server_broadcast_time(16, 1000)

    def test_single_server_broadcast_free(self):
        assert deterlab_topology().server_broadcast_time(1, 100000) == 0.0

    def test_paper_topology_constants(self):
        det = deterlab_topology()
        assert det.client_uplink.latency_s == pytest.approx(0.050)
        assert det.server_link.latency_s == pytest.approx(0.010)
        wifi = emulab_wifi_topology()
        assert wifi.client_uplink.bandwidth_bps == pytest.approx(24e6)
        pl = planetlab_topology()
        assert pl.client_uplink.latency_s > det.client_uplink.latency_s


class TestChurnModels:
    def test_straggler_delays_mostly_subsecond(self):
        model = StragglerModel()
        rng = random.Random(1)
        delays = model.sample_round(2000, rng)
        finite = [d for d in delays if not math.isinf(d)]
        subsecond = sum(1 for d in finite if d < 1.0)
        assert subsecond / len(finite) > 0.8

    def test_straggler_tail_exists(self):
        model = StragglerModel(straggler_prob=0.1)
        rng = random.Random(2)
        delays = model.sample_round(1000, rng)
        assert any(d > 5.0 for d in delays if not math.isinf(d))

    def test_offline_clients_appear(self):
        model = StragglerModel(offline_prob=0.05)
        rng = random.Random(3)
        delays = model.sample_round(1000, rng)
        assert any(math.isinf(d) for d in delays)

    def test_lan_jitter_tight(self):
        model = LanJitterModel()
        rng = random.Random(4)
        delays = model.sample_round(100, rng)
        assert all(0.005 <= d <= 0.016 for d in delays)

    def test_session_churn_preserves_population_count(self):
        model = SessionChurnModel()
        rng = random.Random(5)
        online = [True] * 100
        online = model.step(online, 0.5, rng)
        assert len(online) == 100

    def test_session_churn_reaches_steady_state(self):
        model = SessionChurnModel(mean_session_rounds=50, mean_offline_rounds=50)
        rng = random.Random(6)
        online = [True] * 400
        for r in range(300):
            online = model.step(online, r / 300, rng)
        frac = sum(online) / len(online)
        assert 0.3 < frac < 0.7  # ~50% at equal rates


class TestTraceReplay:
    @pytest.fixture(scope="class")
    def trace(self):
        return generate_trace(TraceConfig(num_rounds=500, seed=77))

    def test_trace_shape(self, trace):
        assert len(trace) == 500
        for rt in trace[:10]:
            assert rt.online_clients == len(rt.delays)

    def test_population_varies(self, trace):
        counts = {rt.online_clients for rt in trace}
        assert len(counts) > 10

    def test_baseline_slower_than_early_cutoff(self, trace):
        base = replay_policy(WaitForAllPolicy(120.0), trace)
        fast = replay_policy(FractionMultiplierPolicy(0.95, 1.1, 120.0), trace)
        assert base.median_completion > 10 * fast.median_completion

    def test_miss_rates_ordered_by_multiplier(self, trace):
        rates = [
            replay_policy(FractionMultiplierPolicy(0.95, m, 120.0), trace).mean_miss_fraction
            for m in (1.1, 1.2, 2.0)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_cdf_is_monotone(self, trace):
        stats = replay_policy(WaitForAllPolicy(120.0), trace)
        cdf = stats.cdf()
        times = [t for t, _ in cdf]
        fracs = [f for _, f in cdf]
        assert times == sorted(times)
        assert fracs[-1] == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a = generate_trace(TraceConfig(num_rounds=50, seed=9))
        b = generate_trace(TraceConfig(num_rounds=50, seed=9))
        assert [rt.delays for rt in a] == [rt.delays for rt in b]
