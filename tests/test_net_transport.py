"""Adversarial framing and transport tests.

Oversized frames, truncated frames, garbage bytes, and unknown message
types must be rejected with **typed** errors — and none of them may crash
a node's dispatch loop: the node reports the error to the coordinator and
keeps serving.
"""

import asyncio
import random

import pytest

from repro.core.client import DissentClient
from repro.core.server import DissentServer
from repro.core.session import build_keys
from repro.errors import (
    ConnectionClosed,
    FrameTooLarge,
    FrameTruncated,
    ProtocolError,
    UnknownMessageType,
    WireDecodeError,
)
from repro.net import wire
from repro.net.message import SignedEnvelope, make_envelope, CLIENT_CIPHERTEXT
from repro.net.node import (
    COORDINATOR,
    ClientNode,
    K_EVIDENCE_REQUEST,
    K_NODE_ERROR,
    K_REPLY,
    K_REPLY_ERROR,
    K_STATUS_REQUEST,
    ServerNode,
)
from repro.net.transport import (
    FaultSchedule,
    TcpTransport,
    connect_tcp,
    loopback_pair,
    serve_tcp,
)
from repro.crypto.schnorr import Signature
from repro.util.serialization import pack_fields, unpack_fields


class TestFrameDecoder:
    def test_oversized_announcement_rejected_before_buffering(self):
        decoder = wire.FrameDecoder(max_frame_bytes=64)
        with pytest.raises(FrameTooLarge):
            decoder.feed((65).to_bytes(4, "big"))

    def test_truncated_stream_detected_at_finish(self):
        decoder = wire.FrameDecoder()
        assert decoder.feed(wire.encode_frame(b"whole") + b"\x00\x00") == [b"whole"]
        with pytest.raises(FrameTruncated):
            decoder.finish()

    def test_encode_enforces_cap(self):
        with pytest.raises(FrameTooLarge):
            wire.encode_frame(b"x" * 65, max_frame_bytes=64)


class TestEnvelopeDecodeRejection:
    def test_garbage_bytes_typed_error(self, group):
        with pytest.raises(WireDecodeError):
            wire.decode_envelope(group, b"\xff\xfe definitely not an envelope")

    def test_unknown_msg_type_rejected_at_decode(self, group, keypair):
        # Hand-craft an otherwise well-formed envelope with a bogus tag:
        # the decoder must refuse to materialize it for dispatch.
        signature = Signature(1, 1)
        encoded = pack_fields(
            "dissent.wire-envelope.v1",
            "evil-type",
            "client-0",
            b"gid",
            3,
            b"body",
            signature.to_bytes(group),
        )
        with pytest.raises(UnknownMessageType):
            wire.decode_envelope(group, encoded)

    def test_unknown_msg_type_rejected_at_construction(self, group, keypair):
        # The satellite fix: _KNOWN_TYPES gating applies to every
        # SignedEnvelope construction, not just make_envelope.
        with pytest.raises(ProtocolError):
            SignedEnvelope(
                msg_type="evil-type",
                sender="client-0",
                group_id=b"gid",
                round_number=0,
                body=b"",
                signature=Signature(1, 1),
            )

    def test_wrong_field_types_rejected(self, group):
        encoded = pack_fields(
            "dissent.wire-envelope.v1",
            "client-ciphertext",
            7,  # sender must be a string
            b"gid",
            3,
            b"body",
            b"sig",
        )
        with pytest.raises(WireDecodeError):
            wire.decode_envelope(group, encoded)


class TestTcpTransport:
    def test_roundtrip_and_clean_close(self):
        async def scenario():
            received = []

            async def handler(transport):
                received.append(await transport.recv())
                await transport.send(b"pong")
                await transport.aclose()

            server, port = await serve_tcp(handler)
            client = await connect_tcp("127.0.0.1", port)
            await client.send(b"ping")
            reply = await client.recv()
            with pytest.raises(ConnectionClosed):
                await client.recv()
            server.close()
            await server.wait_closed()
            return received, reply

        received, reply = asyncio.run(scenario())
        assert received == [b"ping"] and reply == b"pong"

    def test_oversized_frame_rejected(self):
        async def scenario():
            async def handler(transport):
                # Announce a frame far over the cap, never send the body.
                transport.writer.write((1 << 30).to_bytes(4, "big"))
                await transport.writer.drain()

            server, port = await serve_tcp(handler)
            client = await connect_tcp("127.0.0.1", port)
            with pytest.raises(FrameTooLarge):
                await client.recv()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())

    def test_truncated_frame_rejected(self):
        async def scenario():
            async def handler(transport):
                transport.writer.write((100).to_bytes(4, "big") + b"only-part")
                transport.writer.close()

            server, port = await serve_tcp(handler)
            client = await connect_tcp("127.0.0.1", port)
            with pytest.raises(FrameTruncated):
                await client.recv()
            server.close()
            await server.wait_closed()

        asyncio.run(scenario())


class TestLoopbackFaults:
    def test_drop_schedule_is_deterministic(self):
        async def scenario():
            a, b = loopback_pair(a_to_b=FaultSchedule(drop=frozenset({1})))
            for payload in (b"f0", b"f1", b"f2"):
                await a.send(payload)
            return [await b.recv(), await b.recv()]

        assert asyncio.run(scenario()) == [b"f0", b"f2"]

    def test_swap_reorders_adjacent_frames(self):
        async def scenario():
            a, b = loopback_pair(a_to_b=FaultSchedule(swap=frozenset({0})))
            await a.send(b"f0")
            await a.send(b"f1")
            await a.send(b"f2")
            return [await b.recv() for _ in range(3)]

        assert asyncio.run(scenario()) == [b"f1", b"f0", b"f2"]

    def test_swap_flushes_at_close(self):
        async def scenario():
            a, b = loopback_pair(a_to_b=FaultSchedule(swap=frozenset({0})))
            await a.send(b"held")
            await a.aclose()
            return await b.recv()

        assert asyncio.run(scenario()) == b"held"

    def test_latency_delays_but_preserves_order(self):
        async def scenario():
            a, b = loopback_pair(a_to_b=FaultSchedule(latency=0.01))
            start = asyncio.get_running_loop().time()
            await a.send(b"f0")
            await a.send(b"f1")
            frames = [await b.recv(), await b.recv()]
            return frames, asyncio.get_running_loop().time() - start

        frames, elapsed = asyncio.run(scenario())
        assert frames == [b"f0", b"f1"]
        assert elapsed >= 0.02

    def test_cap_enforced(self):
        async def scenario():
            a, _ = loopback_pair(max_frame_bytes=16)
            with pytest.raises(FrameTooLarge):
                await a.send(b"x" * 17)

        asyncio.run(scenario())


def _small_group(num_servers=2, num_clients=2, seed=5):
    rng = random.Random(seed)
    built = build_keys("test-256", num_servers, num_clients, None, rng)
    return built, rng


async def _drive_node(node_factory, frames, extra_request=None):
    """Run a node over a loopback pair, inject frames, collect its output.

    Returns every routed frame the node emitted.  After the injected
    frames, a seq'd status probe checks the dispatch loop still answers.
    """
    hub_side, node_side = loopback_pair()
    node = node_factory(node_side)
    task = asyncio.create_task(node.run())
    hello = wire.decode_routed(await hub_side.recv())
    assert hello.kind == "hello"
    emitted = []
    for payload in frames:
        await hub_side.send(payload)
    # Probe: the node must still answer requests after the hostile input.
    probe = extra_request or (K_STATUS_REQUEST, b"")
    await hub_side.send(
        wire.encode_routed(node.name, COORDINATOR, probe[0], 999, probe[1])
    )
    while True:
        frame = wire.decode_routed(await hub_side.recv())
        emitted.append(frame)
        if frame.seq == 999:
            break
    await hub_side.aclose()
    task.cancel()
    return emitted


class TestDispatchLoopSurvival:
    def test_client_node_survives_garbage_and_unknown_types(self, group):
        built, _ = _small_group()
        definition = built.definition

        def factory(transport):
            node_rng = random.Random(7)
            return ClientNode(
                DissentClient(
                    definition,
                    0,
                    _client_key(built, 0),
                    node_rng,
                ),
                transport,
            )

        bogus_envelope = pack_fields(
            "dissent.wire-envelope.v1",
            "evil-type",
            "client-9",
            b"gid",
            0,
            b"",
            Signature(1, 1).to_bytes(definition.group),
        )
        frames = [
            b"\x00garbage that is not a routed frame",
            wire.encode_routed("client-0", COORDINATOR, "no-such-kind", 0, b""),
            wire.encode_routed("client-0", COORDINATOR, "envelope", 0, b"junk"),
            wire.encode_routed("client-0", COORDINATOR, "envelope", 0, bogus_envelope),
        ]
        emitted = asyncio.run(_drive_node(factory, frames))
        errors = [f for f in emitted if f.kind == K_NODE_ERROR]
        # Every hostile frame produced a typed report, none killed the loop.
        assert len(errors) == len(frames)
        reply = emitted[-1]
        assert reply.kind == K_REPLY and reply.seq == 999
        pending, accusation = unpack_fields(reply.body)
        assert (pending, accusation) == (0, 0)

    def test_unknown_kind_with_seq_gets_typed_reply_error(self):
        built, _ = _small_group()
        definition = built.definition

        def factory(transport):
            return ClientNode(
                DissentClient(definition, 0, _client_key(built, 0), random.Random(7)),
                transport,
            )

        async def scenario():
            hub_side, node_side = loopback_pair()
            task = asyncio.create_task(factory(node_side).run())
            await hub_side.recv()  # hello
            await hub_side.send(
                wire.encode_routed("client-0", COORDINATOR, "bogus-kind", 5, b"")
            )
            frame = wire.decode_routed(await hub_side.recv())
            task.cancel()
            return frame

        frame = asyncio.run(scenario())
        assert frame.kind == K_REPLY_ERROR and frame.seq == 5
        name, message = unpack_fields(frame.body)
        assert name == "WireDecodeError"

    def test_server_node_survives_protocol_violations(self):
        built, _ = _small_group()
        definition = built.definition

        def factory(transport):
            return ServerNode(
                DissentServer(definition, 0, _server_key(built, 0), random.Random(3)),
                transport,
            )

        frames = [
            # commit-go for a round that is not in progress
            wire.encode_routed("server-0", COORDINATOR, "commit-go", 0, pack_fields(9)),
            # valid-looking envelope for an unopened round from a stranger:
            # buffered, not fatal (legitimate out-of-order arrival).
            b"not even a frame \xff",
        ]
        emitted = asyncio.run(
            _drive_node(
                factory,
                frames,
                extra_request=(K_EVIDENCE_REQUEST, pack_fields(4)),
            )
        )
        errors = [f for f in emitted if f.kind == K_NODE_ERROR]
        assert len(errors) == 2
        reply = emitted[-1]
        # The probe itself hits an un-archived round: a *typed* error reply,
        # proving the loop still classifies and answers.
        assert reply.kind == K_REPLY_ERROR and reply.seq == 999
        name, message = unpack_fields(reply.body)
        assert name == "AccusationError"

    def test_early_ciphertext_buffered_not_fatal(self):
        built, _ = _small_group()
        definition = built.definition
        client_key = _client_key(built, 0)

        def factory(transport):
            return ServerNode(
                DissentServer(definition, 0, _server_key(built, 0), random.Random(3)),
                transport,
            )

        envelope = make_envelope(
            client_key, CLIENT_CIPHERTEXT, "client-0", definition.group_id(), 0, b"x"
        )
        frames = [
            wire.encode_routed(
                "server-0",
                "client-0",
                "envelope",
                0,
                wire.encode_envelope(definition.group, envelope),
            )
        ]
        emitted = asyncio.run(
            _drive_node(factory, frames, extra_request=("expel", pack_fields(1)))
        )
        errors = [f for f in emitted if f.kind == K_NODE_ERROR]
        assert errors == []  # buffered silently for the future round
        assert emitted[-1].kind == K_REPLY


def _client_key(built, index):
    return built.client_keys[index]


def _server_key(built, index):
    return built.server_keys[index]
