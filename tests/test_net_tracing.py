"""Distributed tracing and the health plane, end to end.

Covers the wire-level trace context, cross-process stitching and
critical paths over every transport and both group backends, fake-clock
determinism of the Chrome trace export, the flight recorder (unit and
failure-triggered dumps), OpenMetrics rendering plus the live status
endpoint, the telemetry dedup fix, the new Policy knobs, and the report
CLI's --trace/--health/--flight flags.
"""

import json
import socket
import urllib.request

import pytest

from repro.core.config import GroupDefinition, Policy
from repro.core.session import DissentSession
from repro.errors import ConfigError
from repro.net.runner import COORDINATOR, NetworkedSession, dedupe_telemetry_replies
from repro.obs.critical import (
    assemble_traces,
    chrome_trace_json,
    critical_path,
    phase_breakdown,
    trace_table,
    trace_root,
)
from repro.obs.flight import FlightRecorder, flight_table, parse_flight_dump
from repro.obs.health import (
    health_port_for,
    health_table,
    merge_health,
    metric_name,
    render_openmetrics,
)
from repro.obs.propagate import (
    TraceContext,
    context_bytes,
    round_trace_id,
    span_ref,
)


# ---------------------------------------------------------------------------
# Trace context wire format
# ---------------------------------------------------------------------------


class TestTraceContext:
    def test_round_trip(self):
        context = TraceContext("ab12cd34ef56ab12", "coord/7", 3)
        parsed = TraceContext.from_bytes(context.to_bytes())
        assert parsed == context

    def test_child_rebases_parent_ref(self):
        context = TraceContext("ab12cd34ef56ab12", "coord/7", 3)
        child = context.child("server-1", 42)
        assert child.trace_id == context.trace_id
        assert child.round_number == 3
        assert child.span_ref == "server-1/42"

    def test_empty_and_malformed_parse_to_none(self):
        assert TraceContext.from_bytes(b"") is None
        assert TraceContext.from_bytes(b"\xff\x00garbage") is None
        assert context_bytes(None) == b""

    def test_trace_id_is_stable_per_group_and_round(self):
        a = round_trace_id(b"group-a", 1)
        assert a == round_trace_id(b"group-a", 1)
        assert a != round_trace_id(b"group-a", 2)
        assert a != round_trace_id(b"group-b", 1)

    def test_span_ref_format(self):
        assert span_ref("server-0", 9) == "server-0/9"


# ---------------------------------------------------------------------------
# Policy knobs (satellite: validation, serialization, checkpoint)
# ---------------------------------------------------------------------------


class TestObservabilityPolicyKnobs:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Policy(trace_sampling="yes")
        with pytest.raises(ConfigError):
            Policy(flight_recorder_events=-1)
        with pytest.raises(ConfigError):
            Policy(health_port=-1)
        with pytest.raises(ConfigError):
            Policy(health_port=70000)

    def test_serialization_round_trip(self):
        policy = Policy(
            trace_sampling=False, flight_recorder_events=32, health_port=18080
        )
        data = policy.to_dict()
        assert data["trace_sampling"] is False
        assert data["flight_recorder_events"] == 32
        assert data["health_port"] == 18080
        assert Policy.from_dict(data) == policy

    def test_knobs_survive_canonical_definition_bytes(self):
        """The knobs ride GroupDefinition serialization — what durable
        checkpoints persist — so a restored session keeps them."""
        session = DissentSession.build(
            num_servers=2,
            num_clients=2,
            seed=7,
            policy=Policy(
                trace_sampling=False, flight_recorder_events=8, health_port=9100
            ),
        )
        blob = session.definition.canonical_bytes()
        restored = GroupDefinition.from_canonical_bytes(blob)
        assert restored.policy.trace_sampling is False
        assert restored.policy.flight_recorder_events == 8
        assert restored.policy.health_port == 9100


# ---------------------------------------------------------------------------
# Telemetry dedup across reconnects (satellite fix)
# ---------------------------------------------------------------------------


class TestTelemetryDedup:
    def test_duplicate_node_generation_counted_once(self):
        snap = {"counters": {"c": 5}, "gauges": {}, "histograms": {}}
        wrapped = {"node": "server-0", "generation": 0, "snapshot": snap}
        merged = dedupe_telemetry_replies([wrapped, dict(wrapped)])
        assert merged == [snap]

    def test_new_generation_is_fresh(self):
        snap = {"counters": {"c": 5}, "gauges": {}, "histograms": {}}
        replies = [
            {"node": "server-0", "generation": 0, "snapshot": snap},
            {"node": "server-0", "generation": 1, "snapshot": snap},
        ]
        assert dedupe_telemetry_replies(replies) == [snap, snap]

    def test_distinct_nodes_both_merge(self):
        snap = {"counters": {"c": 1}, "gauges": {}, "histograms": {}}
        replies = [
            {"node": "server-0", "generation": 0, "snapshot": snap},
            {"node": "server-1", "generation": 0, "snapshot": snap},
        ]
        assert len(dedupe_telemetry_replies(replies)) == 2

    def test_legacy_bare_snapshots_pass_through(self):
        bare = {"counters": {"c": 2}, "gauges": {}, "histograms": {}}
        assert dedupe_telemetry_replies([bare, bare]) == [bare, bare]

    def test_restarted_node_generation_bumps_in_health(self, tmp_path):
        with NetworkedSession.build(
            num_servers=2,
            num_clients=3,
            seed=31,
            mode="loopback",
            checkpoint_dir=str(tmp_path),
        ) as session:
            session.setup()
            session.run_rounds(1)
            victim = session.node_name("client", 1)
            session.kill_node("client", 1)
            session.wait_dark(victim, timeout=10.0)
            session.restart_node("client", 1)
            session.wait_live(victim, timeout=10.0)
            session.run_rounds(1)
            health = {h["node"]: h for h in session.health()}
            snapshot = session.metrics()
        # The restored node announces a new registry generation...
        assert health[victim]["generation"] == 1
        # ...and the merged view still counts coordinator rounds exactly.
        assert snapshot["counters"]["session.rounds_completed"] == 2


# ---------------------------------------------------------------------------
# Cross-process stitching: every transport, both backends
# ---------------------------------------------------------------------------


def _assert_stitched(events, num_servers, num_clients, rounds):
    """Each round is one causal trace spanning every process."""
    traces = assemble_traces(events)
    round_traces = {
        tid: spans
        for tid, spans in traces.items()
        if trace_root(spans) is not None
    }
    assert len(round_traces) == rounds
    for tid, spans in round_traces.items():
        root = trace_root(spans)
        nodes = {s["node"] for s in spans}
        # Coordinator + every server + every client stitched together.
        assert COORDINATOR in nodes
        assert len(nodes) == 1 + num_servers + num_clients
        segments = critical_path(spans)
        assert segments
        # Segments are disjoint, chronological, and sum to the root span.
        total = sum(seg["seconds"] for seg in segments)
        assert total == pytest.approx(root["end"] - root["start"], abs=1e-9)
        for earlier, later in zip(segments, segments[1:]):
            assert earlier["end"] == pytest.approx(later["start"], abs=1e-9)
        breakdown = phase_breakdown(spans)
        for phase in ("submit", "commit", "reveal", "verify", "output"):
            servers_with_phase = {
                node for (node, p) in breakdown if p == phase
            }
            assert len(servers_with_phase) == num_servers
        assert sum(
            entry["count"] for (node, p), entry in breakdown.items() if p == "build"
        ) == num_clients


class TestCrossProcessStitching:
    @pytest.mark.parametrize("mode", ["loopback", "tcp", "subprocess"])
    def test_one_round_one_trace_per_mode(self, mode):
        rounds = 1 if mode == "subprocess" else 2
        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=77, mode=mode
        ) as session:
            session.setup()
            session.post(0, b"traced message")
            session.run_rounds(rounds)
            events = session.trace_events()
        _assert_stitched(events, num_servers=2, num_clients=3, rounds=rounds)

    @pytest.mark.parametrize("group_name", ["test-256", "ec25519"])
    def test_stitching_per_group_backend(self, group_name):
        with NetworkedSession.build(
            group_name, num_servers=2, num_clients=3, seed=78, mode="loopback"
        ) as session:
            session.setup()
            session.run_rounds(1)
            events = session.trace_events()
        _assert_stitched(events, num_servers=2, num_clients=3, rounds=1)

    def test_trace_table_names_nodes_and_phases(self):
        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=79, mode="loopback"
        ) as session:
            session.setup()
            session.run_rounds(1)
            rendered = trace_table(session.trace_events())
        assert "critical path:" in rendered
        assert "server-" in rendered
        assert "phase breakdown per node" in rendered

    def test_sampling_knob_disables_propagation_not_protocol(self):
        policy = Policy(trace_sampling=False)
        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=80, mode="loopback", policy=policy
        ) as session:
            session.setup()
            record = session.run_round()
            events = session.trace_events()
        assert record.completed
        # Coordinator spans exist (telemetry is on) but carry no trace id
        # and no node spans were collected — nothing propagated.
        assert all("trace_id" not in e["attrs"] for e in events)
        assert {e["attrs"].get("node") for e in events} <= {COORDINATOR, None}


# ---------------------------------------------------------------------------
# Determinism: fake clock → byte-identical Chrome trace JSON
# ---------------------------------------------------------------------------


class TestDeterministicExport:
    @staticmethod
    def _traced_run():
        ticks = iter(range(1, 100000))

        def clock():
            return next(ticks) * 0.001

        session = DissentSession.build(num_servers=2, num_clients=3, seed=5)
        session.enable_telemetry(clock=clock)
        session.setup()
        session.post(0, b"deterministic bytes")
        session.run_rounds(2)
        return [event.as_dict() for event in session.tracer.events]

    def test_chrome_trace_json_is_byte_identical(self):
        first = chrome_trace_json(self._traced_run())
        second = chrome_trace_json(self._traced_run())
        assert first == second
        document = json.loads(first)
        assert any(e["ph"] == "X" for e in document["traceEvents"])
        assert any(e["name"] == "process_name" for e in document["traceEvents"])

    def test_local_round_spans_get_synthetic_traces(self):
        events = self._traced_run()
        traces = assemble_traces(events)
        # In-process sessions stitch by local parent links under the
        # shared trace-id scheme (group id + round), one per round.
        assert len([t for t in traces if trace_root(traces[t])]) == 2


# ---------------------------------------------------------------------------
# Flight recorder
# ---------------------------------------------------------------------------


class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=3, node="n")
        for i in range(10):
            recorder.note("tick", i=i)
        entries = recorder.snapshot()
        assert len(entries) == 3
        assert [e["data"]["i"] for e in entries] == [7, 8, 9]

    def test_capacity_zero_disables(self):
        recorder = FlightRecorder(capacity=0)
        recorder.note("tick")
        assert not recorder.enabled
        assert recorder.snapshot() == []
        assert len(recorder) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=-1)

    def test_ndjson_round_trip(self):
        recorder = FlightRecorder(capacity=8, node="server-0")
        recorder.note("view_change", view=2)
        recorder.record_span(
            {"span_id": 1, "parent_id": None, "name": "round",
             "attrs": {"round": 0}, "start": 0.0, "end": 0.5}
        )
        header, events = parse_flight_dump(recorder.ndjson("manual"))
        assert header["flight"] == "server-0"
        assert header["reason"] == "manual"
        assert header["events"] == 2
        assert events[0]["event"] == "view_change"
        assert events[1]["event"] == "span"

    def test_dump_skips_empty_ring(self, tmp_path):
        recorder = FlightRecorder(capacity=4)
        assert recorder.dump(tmp_path / "nope.ndjson") is None
        recorder.note("x")
        path = recorder.dump(tmp_path / "yes.ndjson", "manual")
        assert path is not None
        header, events = parse_flight_dump((tmp_path / "yes.ndjson").read_text())
        assert len(events) == 1
        assert recorder.dumps == 1

    def test_flight_table_renders(self):
        recorder = FlightRecorder(capacity=4, node="c")
        recorder.note("link_loss", node="client-1")
        rendered = flight_table([parse_flight_dump(recorder.ndjson("link_loss"))])
        assert "link_loss" in rendered
        assert "client-1" in rendered

    def test_failed_round_dumps_flight_and_audits(self, tmp_path):
        flight_dir = tmp_path / "flight"
        flight_dir.mkdir()
        audit_path = tmp_path / "audit.ndjson"
        with NetworkedSession.build(
            num_servers=2,
            num_clients=3,
            seed=81,
            mode="loopback",
            flight_dir=str(flight_dir),
            audit_path=str(audit_path),
        ) as session:
            session.setup()
            assert session.run_round().completed
            # One submitter online is below the §3.7 floor → round fails.
            record = session.run_round(online={0})
            assert not record.completed
            dumps = session.flight_dumps()
        files = sorted(p.name for p in flight_dir.iterdir())
        assert any("round_failure" in name for name in files)
        # The coordinator ring holds the certified round's span lead-up.
        header, events = parse_flight_dump(
            (flight_dir / [f for f in files if "round_failure" in f][0]).read_text()
        )
        assert header["reason"] == "round_failure"
        assert any(e["event"] == "span" for e in events)
        # The dump is chained into the audit log.
        from repro.persist import read_audit_log

        entries = read_audit_log(audit_path)
        assert any(e["event"] == "flight_dump" for e in entries)
        # Live pulls return coordinator + one ring per node.
        assert len(dumps) == 1 + 2 + 3
        assert parse_flight_dump(dumps[0])[0]["flight"] == COORDINATOR


# ---------------------------------------------------------------------------
# Health snapshots, OpenMetrics, and the status endpoint
# ---------------------------------------------------------------------------


class TestHealthPlane:
    def test_metric_name_sanitizes(self):
        assert metric_name("span.phase.commit") == "dissent_span_phase_commit"

    def test_render_openmetrics_shape(self):
        health = {
            "node": "server-0", "role": "server", "rounds_per_sec": 2.5,
            "inflight": 1, "view": 0, "reconnects": 0, "generation": 0,
            "anonymity_set": 8,
        }
        snapshot = {
            "counters": {"session.rounds_completed": 4},
            "gauges": {"pipeline.window": 2},
            "histograms": {
                "span.round": {
                    "edges": [0.1, 1.0], "counts": [3, 1, 0],
                    "count": 4, "sum": 0.9,
                }
            },
        }
        text = render_openmetrics(health, snapshot)
        assert 'dissent_node_info{node="server-0",role="server"} 1' in text
        assert 'dissent_health_anonymity_set{node="server-0"} 8' in text
        assert 'dissent_session_rounds_completed_total{node="server-0"} 4' in text
        # Histogram buckets are cumulative and end with +Inf == count.
        assert 'le="0.1"' in text
        assert 'le="+Inf",node="server-0"} 4' in text
        assert 'dissent_span_round_sum{node="server-0"} 0.9' in text
        assert text.endswith("# EOF\n")

    def test_merge_health_is_paper_conservative(self):
        merged = merge_health(
            [
                {"role": "server", "rounds_per_sec": 3.0, "anonymity_set": 8,
                 "view": 0, "reconnects": 1, "inflight": 1},
                {"role": "server", "rounds_per_sec": 2.0, "anonymity_set": 6,
                 "view": 1, "reconnects": 0, "inflight": 2},
                {"role": "client", "rounds_per_sec": 2.5},
            ]
        )
        assert merged["servers"] == 2
        assert merged["clients"] == 1
        # Throughput and anonymity are as slow/small as the worst node.
        assert merged["rounds_per_sec"] == 2.0
        assert merged["anonymity_set"] == 6
        assert merged["view"] == 1
        assert merged["reconnects"] == 1
        assert merged["inflight"] == 3

    def test_health_table_lists_nodes_and_summary(self):
        rendered = health_table(
            [
                {"node": "server-0", "role": "server", "rounds_per_sec": 1.0,
                 "anonymity_set": 5},
                {"node": "client-0", "role": "client", "rounds_per_sec": 1.0},
            ]
        )
        assert "server-0" in rendered
        assert "deployment:" in rendered
        assert "anonymity-set=5" in rendered

    def test_session_health_view(self):
        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=82, mode="loopback"
        ) as session:
            session.setup()
            session.run_rounds(2)
            health = session.health()
        by_node = {h["node"]: h for h in health}
        assert len(by_node) == 5
        servers = [h for h in health if h["role"] == "server"]
        assert len(servers) == 2
        for server in servers:
            assert server["rounds_done"] == 2
            assert server["anonymity_set"] == 3
            assert server["inflight"] == 0
        merged = merge_health(health)
        assert merged["anonymity_set"] == 3

    def test_status_endpoint_serves_openmetrics(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        base_port = probe.getsockname()[1]
        probe.close()
        policy = Policy(health_port=base_port)
        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=83, mode="loopback", policy=policy
        ) as session:
            session.setup()
            session.run_rounds(1)
            url = f"http://127.0.0.1:{health_port_for(base_port, 0)}"
            metrics_text = urllib.request.urlopen(f"{url}/metrics", timeout=5).read()
            healthz = json.loads(
                urllib.request.urlopen(f"{url}/healthz", timeout=5).read()
            )
        text = metrics_text.decode("utf-8")
        assert 'dissent_node_info{node="server-0",role="server"} 1' in text
        assert "dissent_health_rounds_done" in text
        assert text.endswith("# EOF\n")
        assert healthz["node"] == "server-0"
        assert healthz["rounds_done"] == 1


# ---------------------------------------------------------------------------
# Report CLI flags
# ---------------------------------------------------------------------------


class TestReportFlags:
    @pytest.fixture(scope="class")
    def artifacts(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("obsreport")
        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=84, mode="loopback"
        ) as session:
            session.setup()
            session.run_rounds(1)
            events = session.trace_events()
            health = session.health()
            dumps = session.flight_dumps()
        trace_path = base / "trace.json"
        trace_path.write_text(json.dumps({"events": events}))
        health_path = base / "health.json"
        health_path.write_text(json.dumps(health))
        flight_path = base / "flight.ndjson"
        flight_path.write_text(dumps[0])
        return trace_path, health_path, flight_path

    def test_trace_flag(self, artifacts, capsys):
        from repro.obs.report import main

        trace_path, _, _ = artifacts
        assert main(["--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "critical path:" in out
        assert "phase breakdown per node" in out

    def test_health_flag(self, artifacts, capsys):
        from repro.obs.report import main

        _, health_path, _ = artifacts
        assert main(["--health", str(health_path)]) == 0
        out = capsys.readouterr().out
        assert "deployment:" in out

    def test_flight_flag(self, artifacts, capsys):
        from repro.obs.report import main

        _, _, flight_path = artifacts
        assert main(["--flight", str(flight_path)]) == 0
        out = capsys.readouterr().out
        assert "flight" in out

    def test_usage_errors(self):
        from repro.obs.report import main

        assert main([]) == 2
        assert main(["--trace"]) == 2
        assert main(["a.json", "b.json"]) == 2
