"""Tests for the classic and leader-based DC-net baselines."""

import pytest

from repro.dcnet import ClassicDcNet, LeaderDcNet
from repro.dcnet.classic import analytic_costs as classic_costs
from repro.dcnet.leader import analytic_costs as leader_costs
from repro.errors import ProtocolError


class TestClassicDcNet:
    def test_xor_cancellation(self):
        net = ClassicDcNet(5, seed=1)
        message = b"\xca\xfe\xba\xbe"
        result = net.run_round(0, 4, sender=2, message=message)
        assert result.cleartext == message
        assert result.attempts == 1

    def test_no_sender_yields_zeros(self):
        net = ClassicDcNet(4, seed=2)
        result = net.run_round(0, 8)
        assert result.cleartext == bytes(8)

    def test_drop_forces_restart(self):
        net = ClassicDcNet(5, seed=3)
        message = b"\x01\x02"
        result = net.run_round(0, 2, sender=0, message=message, drop_schedule=[{3}])
        assert result.attempts == 2
        assert result.cleartext == message
        assert 3 not in result.participants

    def test_sequential_drops_restart_each_time(self):
        net = ClassicDcNet(6, seed=4)
        result = net.run_round(
            0, 2, sender=0, message=b"ok", drop_schedule=[{1}, {2}, {3}]
        )
        assert result.attempts == 4
        assert result.cleartext == b"ok"

    def test_sender_drop_rejected(self):
        net = ClassicDcNet(3, seed=5)
        with pytest.raises(ProtocolError):
            net.run_round(0, 1, sender=1, message=b"x", drop_schedule=[{1}])

    def test_per_member_prng_cost_linear_in_n(self):
        net = ClassicDcNet(6, seed=6)
        net.run_round(0, 10)
        # Every member generated 5 streams of 10 bytes.
        assert net.members[0].counters.prng_bytes == 50

    def test_analytic_costs(self):
        counters = classic_costs(10, 100)
        assert counters.prng_bytes == 10 * 9 * 100
        assert counters.messages_sent == 90


class TestLeaderDcNet:
    def test_xor_cancellation(self):
        net = LeaderDcNet(4, seed=7)
        out = net.run_round(0, 3, sender=1, message=b"abc")
        assert out == b"abc"

    def test_disruptor_corrupts_without_attribution(self):
        net = LeaderDcNet(4, seed=8)
        out = net.run_round(0, 4, sender=1, message=b"abcd", disruptor=3)
        assert out != b"abcd"  # corrupted, and nothing identifies member 3

    def test_reform_is_the_only_remedy(self):
        net = LeaderDcNet(5, seed=9)
        reformed = net.reform_without({3})
        assert reformed.num_members == 4
        out = reformed.run_round(0, 2, sender=0, message=b"ok")
        assert out == b"ok"

    def test_reform_too_small_rejected(self):
        net = LeaderDcNet(3, seed=10)
        with pytest.raises(ProtocolError):
            net.reform_without({0, 1})

    def test_leader_message_count_linear(self):
        counters = leader_costs(10, 64)
        assert counters.messages_sent == 18  # 2(N-1), not N(N-1)

    def test_bad_leader_index_rejected(self):
        with pytest.raises(ProtocolError):
            LeaderDcNet(3, leader=5)
