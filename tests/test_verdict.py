"""Verdict subsystem: verifiable rounds, in-round blame, hybrid mode."""

import random
from functools import partial

import pytest

from repro.core import DissentSession
from repro.core.config import Policy
from repro.core.session import build_session
from repro.crypto import elgamal
from repro.crypto.groups import testing_group as make_test_group
from repro.crypto.keys import PrivateKey
from repro.errors import ProtocolError
from repro.verdict.ciphertext import (
    VerdictClientCiphertext,
    chunk_count,
    combine_client_ciphertexts,
    decode_round,
    make_client_ciphertext,
    make_server_share,
    open_round,
    split_chunks,
    verify_client_ciphertext,
    verify_server_share,
)
from repro.verdict.hybrid import (
    HybridSession,
    build_hybrid_with_disruptor,
    pad_commitment_digest,
)
from repro.verdict.session import (
    DisruptingVerdictClient,
    VerdictSession,
)


# ---------------------------------------------------------------------------
# Ciphertext layer
# ---------------------------------------------------------------------------


class TestVerdictCiphertext:
    def _setup(self, seed=1):
        group = make_test_group()
        rng = random.Random(seed)
        server_keys = [PrivateKey.generate(group, rng) for _ in range(3)]
        combined = elgamal.combined_key([k.public for k in server_keys])
        slot_private = PrivateKey.generate(group, rng)
        return group, rng, server_keys, combined, slot_private

    def test_owner_round_trip(self):
        group, rng, server_keys, combined, slot_private = self._setup()
        payload = b"verifiable hello"
        width = chunk_count(group, len(payload))
        owner = make_client_ciphertext(
            group, combined, slot_private.y, 0, b"sid", 7, 2, width,
            payload=payload, slot_private=slot_private, rng=rng,
        )
        covers = [
            make_client_ciphertext(
                group, combined, slot_private.y, i, b"sid", 7, 2, width, rng=rng
            )
            for i in (1, 2)
        ]
        for submission in (owner, *covers):
            assert verify_client_ciphertext(
                group, combined, slot_private.y, b"sid", 7, 2, width, submission
            )
        a_parts, b_parts = combine_client_ciphertexts(
            group, [owner, *covers], width
        )
        shares = [
            make_server_share(group, key, j, a_parts, b"sid", 7, 2)
            for j, key in enumerate(server_keys)
        ]
        for share in shares:
            assert verify_server_share(
                group, server_keys[share.server_index].public,
                a_parts, b"sid", 7, 2, share,
            )
        assert decode_round(group, open_round(group, b_parts, shares)) == payload

    def test_all_silent_round_decodes_empty(self):
        group, rng, server_keys, combined, slot_private = self._setup(2)
        width = 2
        covers = [
            make_client_ciphertext(
                group, combined, slot_private.y, i, b"sid", 0, 0, width, rng=rng
            )
            for i in range(3)
        ]
        a_parts, b_parts = combine_client_ciphertexts(group, covers, width)
        shares = [
            make_server_share(group, key, j, a_parts, b"sid", 0, 0)
            for j, key in enumerate(server_keys)
        ]
        assert decode_round(group, open_round(group, b_parts, shares)) == b""

    def test_garbled_ciphertext_fails_verification(self):
        group, rng, server_keys, combined, slot_private = self._setup(3)
        honest = make_client_ciphertext(
            group, combined, slot_private.y, 1, b"sid", 4, 0, 1, rng=rng
        )
        noise = group.random_element(rng)
        garbled = VerdictClientCiphertext(
            1,
            (elgamal.Ciphertext(
                honest.ciphertexts[0].a,
                group.mul(honest.ciphertexts[0].b, noise),
            ),),
            honest.proofs,
        )
        assert not verify_client_ciphertext(
            group, combined, slot_private.y, b"sid", 4, 0, 1, garbled
        )

    def test_proof_bound_to_position_and_sender(self):
        group, rng, server_keys, combined, slot_private = self._setup(4)
        honest = make_client_ciphertext(
            group, combined, slot_private.y, 1, b"sid", 4, 0, 1, rng=rng
        )
        # Same transcript replayed under another client index fails.
        stolen = VerdictClientCiphertext(2, honest.ciphertexts, honest.proofs)
        assert not verify_client_ciphertext(
            group, combined, slot_private.y, b"sid", 4, 0, 1, stolen
        )
        # ... or another round.
        assert not verify_client_ciphertext(
            group, combined, slot_private.y, b"sid", 5, 0, 1, honest
        )

    def test_non_owner_cannot_carry_a_message(self):
        group, rng, server_keys, combined, slot_private = self._setup(5)
        with pytest.raises(ProtocolError):
            make_client_ciphertext(
                group, combined, slot_private.y, 0, b"sid", 1, 0, 1,
                payload=b"hi", slot_private=None, rng=rng,
            )

    def test_bad_server_share_rejected(self):
        group, rng, server_keys, combined, slot_private = self._setup(6)
        sub = make_client_ciphertext(
            group, combined, slot_private.y, 0, b"sid", 2, 1, 1, rng=rng
        )
        a_parts, _ = combine_client_ciphertexts(group, [sub], 1)
        share = make_server_share(group, server_keys[0], 0, a_parts, b"sid", 2, 1)
        lying = type(share)(0, tuple(group.mul(s, group.g) for s in share.shares), share.proofs)
        assert not verify_server_share(
            group, server_keys[0].public, a_parts, b"sid", 2, 1, lying
        )

    def test_chunking_round_trip(self):
        group = make_test_group()
        payload = bytes(range(50))
        width = chunk_count(group, len(payload))
        assert b"".join(split_chunks(group, payload, width)) == payload


# ---------------------------------------------------------------------------
# Verifiable session: acceptance (a) and (b)
# ---------------------------------------------------------------------------


class TestVerdictSession:
    def test_well_formed_round_decodes(self):
        session = VerdictSession.build(
            num_servers=3, num_clients=4, seed=42, slot_payload=48
        )
        session.post(1, b"hello verifiable world")
        session.run_until_quiet()
        delivered = {m for _, _, m in session.delivered_messages(0)}
        assert b"hello verifiable world" in delivered
        # Every client observed the same payloads.
        for i in range(1, 4):
            assert {m for _, _, m in session.delivered_messages(i)} == delivered

    def test_malformed_ciphertext_rejected_and_sender_named(self):
        session = VerdictSession.build(
            num_servers=3,
            num_clients=4,
            seed=42,
            slot_payload=48,
            client_factories={2: partial(DisruptingVerdictClient)},
        )
        session.post(1, b"important message")
        record = session.run_round()
        # Named in the very round it misbehaved — no accusation machinery.
        assert record.rejected_clients == (2,)
        assert 2 in session.expelled
        # The round itself still completed for everyone else, and traffic
        # flows once the disruptor is out.
        assert not record.blamed_servers
        session.run_until_quiet()
        assert any(
            m == b"important message" for _, _, m in session.delivered_messages(0)
        )
        assert session.total_counters().rejected_submissions >= 1

    def test_oversized_message_rejected_at_post(self):
        session = VerdictSession.build(
            num_servers=2, num_clients=3, seed=1, slot_payload=24
        )
        too_big = b"x" * (session.slot_capacity + 1)
        with pytest.raises(ProtocolError):
            session.post(0, too_big)
        # Capacity-sized traffic still flows.
        session.post(0, b"y" * session.slot_capacity)
        session.run_until_quiet()
        assert any(
            m == b"y" * session.slot_capacity
            for _, _, m in session.delivered_messages(1)
        )

    def test_honest_servers_agree_on_rejection(self):
        session = VerdictSession.build(
            num_servers=2,
            num_clients=3,
            seed=9,
            slot_payload=24,
            client_factories={0: partial(DisruptingVerdictClient)},
        )
        session.run_round()
        counts = {s.counters.rejected_submissions for s in session.servers}
        assert counts == {1}


# ---------------------------------------------------------------------------
# Hybrid mode: acceptance (c)
# ---------------------------------------------------------------------------


class TestHybridMode:
    def test_clean_rounds_match_xor_fast_path_bit_for_bit(self):
        xor = DissentSession.build(num_servers=3, num_clients=6, seed=5)
        hybrid = HybridSession.build(num_servers=3, num_clients=6, seed=5)
        xor.setup()
        hybrid.setup()
        xor.post(2, b"clean round message")
        hybrid.post(2, b"clean round message")
        for _ in range(4):
            a = xor.run_round()
            b = hybrid.run_round()
            # Identical bytes on the wire (signature nonces draw from the
            # system CSPRNG, so only the signed content is comparable).
            assert a.output.cleartext == b.output.cleartext
            assert a.participation == b.participation
        assert not hybrid.blames

    def test_disruptor_named_without_accusation_shuffle(self):
        session, _ = build_hybrid_with_disruptor(
            seed=33, disruptor_index=4, victim_index=1, flips_per_round=3
        )
        session.post(1, b"the disruptor will jam this")
        for _ in range(12):
            session.run_round()
            if session.blames and session.blames[-1].status == "blamed":
                break
        blame = session.blames[-1]
        assert blame.client_culprits == (4,)
        assert 4 in session.expelled
        # The whole point: zero accusation shuffles ran.
        assert session.hybrid_counters.accusation_shuffles == 0
        # The replay reconstructed the victim's true slot bytes: the
        # witness bit really was flipped 0 -> 1 in the archived output.
        archive = session.servers[0].archive[blame.round_number]
        start, _ = archive.layout.slot_byte_range(blame.slot_index)
        from repro.util.bytesops import get_bit

        offset = blame.witness_bit - 8 * start
        assert get_bit(blame.true_slot_bytes, offset) == 0
        assert get_bit(archive.cleartext, blame.witness_bit) == 1
        # Traffic completes once the disruptor is expelled.
        session.run_until_quiet()
        assert any(
            m == b"the disruptor will jam this"
            for _, _, m in session.delivered_messages(0)
        )

    def test_replay_preserves_owner_anonymity_shape(self):
        """Replay submissions are proof-carrying for every client alike."""
        session, victim_slot = build_hybrid_with_disruptor(
            seed=33, flips_per_round=3
        )
        session.post(1, b"jam target")
        for _ in range(12):
            session.run_round()
            if session.blames and session.blames[-1].status == "blamed":
                break
        blame = session.blames[-1]
        # All remaining final-list members replayed and all proofs verified
        # (the disruptor lies about content, not proofs).
        assert blame.rejected_replays == ()
        assert blame.verdicts and blame.verdicts[0].culprit_kind == "client"

    def test_pad_commitments_archived_and_verifiable(self):
        session = HybridSession.build(num_servers=3, num_clients=4, seed=8)
        session.setup()
        session.post(0, b"x")
        record = session.run_round()
        commitments = session.pad_archive[record.round_number]
        assert set(commitments) == set(range(4))
        # The upstream server can re-derive each digest from the pad it
        # already computes when combining.
        from repro.crypto import prng

        length = len(record.output.cleartext)
        for i in range(4):
            upstream = i % 3
            server = session.servers[upstream]
            expected = pad_commitment_digest(
                server.group_id,
                record.round_number,
                i,
                upstream,
                prng.pair_stream(server.secrets[i], record.round_number, length),
            )
            assert commitments[i] == expected

    def test_hybrid_archives_stay_bounded(self):
        session = HybridSession.build(num_servers=2, num_clients=3, seed=12)
        session.setup()
        keep = session.definition.policy.archive_rounds
        for _ in range(3 * keep):
            session.run_round()
        assert len(session.pad_archive) <= keep
        for client in session.clients:
            assert len(client.sent_history) <= keep

    def test_accusation_phase_is_refused(self):
        session = HybridSession.build(num_servers=2, num_clients=3, seed=3)
        session.setup()
        with pytest.raises(ProtocolError):
            session.run_accusation_phase()
        assert session.hybrid_counters.accusation_shuffles == 1


# ---------------------------------------------------------------------------
# Policy integration
# ---------------------------------------------------------------------------


class TestModePolicy:
    def test_build_session_dispatches_on_mode(self):
        xor = build_session(num_clients=3, num_servers=2, seed=1)
        assert type(xor) is DissentSession
        hybrid = build_session(
            num_clients=3,
            num_servers=2,
            seed=1,
            policy=Policy(dcnet_mode="hybrid"),
        )
        assert isinstance(hybrid, HybridSession)
        verifiable = build_session(
            num_clients=3,
            num_servers=2,
            seed=1,
            policy=Policy(dcnet_mode="verifiable", initial_slot_payload=24),
        )
        assert isinstance(verifiable, VerdictSession)

    def test_invalid_mode_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            Policy(dcnet_mode="quantum")

    def test_mode_round_trips_through_policy_serialization(self):
        policy = Policy(dcnet_mode="hybrid")
        assert Policy.from_dict(policy.to_dict()) == policy
        # Old serialized policies without the field still parse.
        legacy = policy.to_dict()
        del legacy["dcnet_mode"]
        assert Policy.from_dict(legacy).dcnet_mode == "xor"
