"""Verdict subsystem: verifiable rounds, in-round blame, hybrid mode."""

import random
from functools import partial

import pytest

from repro.core import DissentSession
from repro.core.config import Policy
from repro.core.session import build_session
from repro.crypto import elgamal
from repro.crypto.groups import testing_group as make_test_group
from repro.crypto.keys import PrivateKey
from repro.errors import ProtocolError
from repro.verdict.ciphertext import (
    VerdictClientCiphertext,
    chunk_count,
    combine_client_ciphertexts,
    decode_round,
    make_client_ciphertext,
    make_server_share,
    open_round,
    split_chunks,
    verify_client_ciphertext,
    verify_server_share,
)
from repro.verdict.hybrid import (
    HybridSession,
    build_hybrid_with_disruptor,
    pad_commitment_digest,
)
from repro.verdict.session import (
    DisruptingVerdictClient,
    VerdictSession,
)


# ---------------------------------------------------------------------------
# Ciphertext layer
# ---------------------------------------------------------------------------


class TestVerdictCiphertext:
    def _setup(self, seed=1):
        group = make_test_group()
        rng = random.Random(seed)
        server_keys = [PrivateKey.generate(group, rng) for _ in range(3)]
        combined = elgamal.combined_key([k.public for k in server_keys])
        slot_private = PrivateKey.generate(group, rng)
        return group, rng, server_keys, combined, slot_private

    def test_owner_round_trip(self):
        group, rng, server_keys, combined, slot_private = self._setup()
        payload = b"verifiable hello"
        width = chunk_count(group, len(payload))
        owner = make_client_ciphertext(
            group, combined, slot_private.y, 0, b"sid", 7, 2, width,
            payload=payload, slot_private=slot_private, rng=rng,
        )
        covers = [
            make_client_ciphertext(
                group, combined, slot_private.y, i, b"sid", 7, 2, width, rng=rng
            )
            for i in (1, 2)
        ]
        for submission in (owner, *covers):
            assert verify_client_ciphertext(
                group, combined, slot_private.y, b"sid", 7, 2, width, submission
            )
        a_parts, b_parts = combine_client_ciphertexts(
            group, [owner, *covers], width
        )
        shares = [
            make_server_share(group, key, j, a_parts, b"sid", 7, 2)
            for j, key in enumerate(server_keys)
        ]
        for share in shares:
            assert verify_server_share(
                group, server_keys[share.server_index].public,
                a_parts, b"sid", 7, 2, share,
            )
        assert decode_round(group, open_round(group, b_parts, shares)) == payload

    def test_all_silent_round_decodes_empty(self):
        group, rng, server_keys, combined, slot_private = self._setup(2)
        width = 2
        covers = [
            make_client_ciphertext(
                group, combined, slot_private.y, i, b"sid", 0, 0, width, rng=rng
            )
            for i in range(3)
        ]
        a_parts, b_parts = combine_client_ciphertexts(group, covers, width)
        shares = [
            make_server_share(group, key, j, a_parts, b"sid", 0, 0)
            for j, key in enumerate(server_keys)
        ]
        assert decode_round(group, open_round(group, b_parts, shares)) == b""

    def test_garbled_ciphertext_fails_verification(self):
        group, rng, server_keys, combined, slot_private = self._setup(3)
        honest = make_client_ciphertext(
            group, combined, slot_private.y, 1, b"sid", 4, 0, 1, rng=rng
        )
        noise = group.random_element(rng)
        garbled = VerdictClientCiphertext(
            1,
            (elgamal.Ciphertext(
                honest.ciphertexts[0].a,
                group.mul(honest.ciphertexts[0].b, noise),
            ),),
            honest.proofs,
        )
        assert not verify_client_ciphertext(
            group, combined, slot_private.y, b"sid", 4, 0, 1, garbled
        )

    def test_proof_bound_to_position_and_sender(self):
        group, rng, server_keys, combined, slot_private = self._setup(4)
        honest = make_client_ciphertext(
            group, combined, slot_private.y, 1, b"sid", 4, 0, 1, rng=rng
        )
        # Same transcript replayed under another client index fails.
        stolen = VerdictClientCiphertext(2, honest.ciphertexts, honest.proofs)
        assert not verify_client_ciphertext(
            group, combined, slot_private.y, b"sid", 4, 0, 1, stolen
        )
        # ... or another round.
        assert not verify_client_ciphertext(
            group, combined, slot_private.y, b"sid", 5, 0, 1, honest
        )

    def test_non_owner_cannot_carry_a_message(self):
        group, rng, server_keys, combined, slot_private = self._setup(5)
        with pytest.raises(ProtocolError):
            make_client_ciphertext(
                group, combined, slot_private.y, 0, b"sid", 1, 0, 1,
                payload=b"hi", slot_private=None, rng=rng,
            )

    def test_bad_server_share_rejected(self):
        group, rng, server_keys, combined, slot_private = self._setup(6)
        sub = make_client_ciphertext(
            group, combined, slot_private.y, 0, b"sid", 2, 1, 1, rng=rng
        )
        a_parts, _ = combine_client_ciphertexts(group, [sub], 1)
        share = make_server_share(group, server_keys[0], 0, a_parts, b"sid", 2, 1)
        lying = type(share)(0, tuple(group.mul(s, group.g) for s in share.shares), share.proofs)
        assert not verify_server_share(
            group, server_keys[0].public, a_parts, b"sid", 2, 1, lying
        )

    def test_chunking_round_trip(self):
        group = make_test_group()
        payload = bytes(range(50))
        width = chunk_count(group, len(payload))
        assert b"".join(split_chunks(group, payload, width)) == payload


# ---------------------------------------------------------------------------
# Verifiable session: acceptance (a) and (b)
# ---------------------------------------------------------------------------


class TestVerdictSession:
    def test_well_formed_round_decodes(self):
        session = VerdictSession.build(
            num_servers=3, num_clients=4, seed=42, slot_payload=48
        )
        session.post(1, b"hello verifiable world")
        session.run_until_quiet()
        delivered = {m for _, _, m in session.delivered_messages(0)}
        assert b"hello verifiable world" in delivered
        # Every client observed the same payloads.
        for i in range(1, 4):
            assert {m for _, _, m in session.delivered_messages(i)} == delivered

    def test_malformed_ciphertext_rejected_and_sender_named(self):
        session = VerdictSession.build(
            num_servers=3,
            num_clients=4,
            seed=42,
            slot_payload=48,
            client_factories={2: partial(DisruptingVerdictClient)},
        )
        session.post(1, b"important message")
        record = session.run_round()
        # Named in the very round it misbehaved — no accusation machinery.
        assert record.rejected_clients == (2,)
        assert 2 in session.expelled
        # The round itself still completed for everyone else, and traffic
        # flows once the disruptor is out.
        assert not record.blamed_servers
        session.run_until_quiet()
        assert any(
            m == b"important message" for _, _, m in session.delivered_messages(0)
        )
        assert session.total_counters().rejected_submissions >= 1

    def test_oversized_message_rejected_at_post(self):
        session = VerdictSession.build(
            num_servers=2, num_clients=3, seed=1, slot_payload=24
        )
        too_big = b"x" * (session.slot_capacity + 1)
        with pytest.raises(ProtocolError):
            session.post(0, too_big)
        # Capacity-sized traffic still flows.
        session.post(0, b"y" * session.slot_capacity)
        session.run_until_quiet()
        assert any(
            m == b"y" * session.slot_capacity
            for _, _, m in session.delivered_messages(1)
        )

    def test_honest_servers_agree_on_rejection(self):
        session = VerdictSession.build(
            num_servers=2,
            num_clients=3,
            seed=9,
            slot_payload=24,
            client_factories={0: partial(DisruptingVerdictClient)},
        )
        session.run_round()
        counts = {s.counters.rejected_submissions for s in session.servers}
        assert counts == {1}


# ---------------------------------------------------------------------------
# Hybrid mode: acceptance (c)
# ---------------------------------------------------------------------------


class TestHybridMode:
    def test_clean_rounds_match_xor_fast_path_bit_for_bit(self):
        xor = DissentSession.build(num_servers=3, num_clients=6, seed=5)
        hybrid = HybridSession.build(num_servers=3, num_clients=6, seed=5)
        xor.setup()
        hybrid.setup()
        xor.post(2, b"clean round message")
        hybrid.post(2, b"clean round message")
        for _ in range(4):
            a = xor.run_round()
            b = hybrid.run_round()
            # Identical bytes on the wire (signature nonces draw from the
            # system CSPRNG, so only the signed content is comparable).
            assert a.output.cleartext == b.output.cleartext
            assert a.participation == b.participation
        assert not hybrid.blames

    def test_disruptor_named_without_accusation_shuffle(self):
        session, _ = build_hybrid_with_disruptor(
            seed=33, disruptor_index=4, victim_index=1, flips_per_round=3
        )
        session.post(1, b"the disruptor will jam this")
        for _ in range(12):
            session.run_round()
            if session.blames and session.blames[-1].status == "blamed":
                break
        blame = session.blames[-1]
        assert blame.client_culprits == (4,)
        assert 4 in session.expelled
        # The whole point: zero accusation shuffles ran.
        assert session.hybrid_counters.accusation_shuffles == 0
        # The replay reconstructed the victim's true slot bytes: the
        # witness bit really was flipped 0 -> 1 in the archived output.
        archive = session.servers[0].archive[blame.round_number]
        start, _ = archive.layout.slot_byte_range(blame.slot_index)
        from repro.util.bytesops import get_bit

        offset = blame.witness_bit - 8 * start
        assert get_bit(blame.true_slot_bytes, offset) == 0
        assert get_bit(archive.cleartext, blame.witness_bit) == 1
        # Traffic completes once the disruptor is expelled.
        session.run_until_quiet()
        assert any(
            m == b"the disruptor will jam this"
            for _, _, m in session.delivered_messages(0)
        )

    def test_replay_preserves_owner_anonymity_shape(self):
        """Replay submissions are proof-carrying for every client alike."""
        session, victim_slot = build_hybrid_with_disruptor(
            seed=33, flips_per_round=3
        )
        session.post(1, b"jam target")
        for _ in range(12):
            session.run_round()
            if session.blames and session.blames[-1].status == "blamed":
                break
        blame = session.blames[-1]
        # All remaining final-list members replayed and all proofs verified
        # (the disruptor lies about content, not proofs).
        assert blame.rejected_replays == ()
        assert blame.verdicts and blame.verdicts[0].culprit_kind == "client"

    def test_pad_commitments_archived_and_verifiable(self):
        session = HybridSession.build(num_servers=3, num_clients=4, seed=8)
        session.setup()
        session.post(0, b"x")
        record = session.run_round()
        commitments = session.pad_archive[record.round_number]
        assert set(commitments) == set(range(4))
        # The upstream server can re-derive each Merkle root from the pad
        # it already computes when combining, and the archived leaves must
        # open the archived root.
        from repro.crypto import prng
        from repro.crypto.hashing import merkle_root
        from repro.verdict.hybrid import pad_chunk_leaves

        length = len(record.output.cleartext)
        for i in range(4):
            upstream = i % 3
            server = session.servers[upstream]
            pad = prng.pair_stream(server.secrets[i], record.round_number, length)
            expected = pad_commitment_digest(
                server.group_id, record.round_number, i, upstream, pad
            )
            assert commitments[i].root == expected
            assert commitments[i].leaves == pad_chunk_leaves(
                server.group_id, record.round_number, i, upstream, pad
            )
            assert merkle_root(list(commitments[i].leaves)) == expected

    def test_hybrid_archives_stay_bounded(self):
        session = HybridSession.build(num_servers=2, num_clients=3, seed=12)
        session.setup()
        keep = session.definition.policy.archive_rounds
        for _ in range(3 * keep):
            session.run_round()
        assert len(session.pad_archive) <= keep
        for client in session.clients:
            assert len(client.sent_history) <= keep

    def test_accusation_phase_is_refused(self):
        session = HybridSession.build(num_servers=2, num_clients=3, seed=3)
        session.setup()
        with pytest.raises(ProtocolError):
            session.run_accusation_phase()
        assert session.hybrid_counters.accusation_shuffles == 1

    def test_merkle_root_binds_leaves(self):
        from repro.crypto.hashing import merkle_root, sha256

        leaves = [sha256(bytes([i])) for i in range(5)]
        root = merkle_root(list(leaves))
        assert merkle_root(list(leaves)) == root
        tampered = list(leaves)
        tampered[3] = sha256(b"forged")
        assert merkle_root(tampered) != root
        assert merkle_root(leaves[:4]) != root
        assert merkle_root([]) == merkle_root([])

    def test_replay_reverifies_only_the_corrupted_chunk_span(self):
        """The Merkle satellite's acceptance property: a corrupted round's
        replay re-derives/re-checks pads only over the corrupted slot's
        chunk span, and opens slot chunks lazily up to the witness chunk —
        not the whole slot."""
        from repro.core.config import Policy
        from repro.verdict.hybrid import (
            PAD_CHUNK_BYTES,
            build_hybrid_with_disruptor,
        )

        session, victim_slot = build_hybrid_with_disruptor(
            num_servers=3,
            num_clients=6,
            seed=34,
            policy=Policy(initial_slot_payload=96),
        )
        # Every client posts, so all six slots open and the round spans
        # several pad chunks — the corrupted slot covers only some.
        for i in range(6):
            session.post(i, bytes([i + 1]) * 90)
        for _ in range(4):
            session.run_round()
            if session.blames:
                break
        blame = session.blames[-1]
        assert blame.status == "blamed"
        assert [(v.culprit_kind, v.culprit_index) for v in blame.verdicts] == [
            ("client", 4)
        ]
        # Lazy replay: a multi-chunk slot, never opened past the witness
        # chunk; the verified prefix is exactly what the record carries.
        # (Seed-dependent but deterministic: the witness sits in chunk 2
        # of 5, so three chunks' proofs were never paid for.)
        assert blame.total_chunks > 1
        assert blame.chunks_replayed < blame.total_chunks
        group = session.definition.group
        archive = session.servers[0].archive[blame.round_number]
        start, end = archive.layout.slot_byte_range(blame.slot_index)
        assert len(blame.true_slot_bytes) == min(
            end - start, blame.chunks_replayed * group.message_bytes
        )

        counters = session.hybrid_counters
        length = archive.layout.total_bytes
        first_leaf = start // PAD_CHUNK_BYTES
        last_leaf = (end - 1) // PAD_CHUNK_BYTES
        span = last_leaf - first_leaf + 1
        # First blame of the session: nobody was expelled before the
        # replay ran, so every final-list member re-checked its pads.
        participants = len(archive.final_list)
        total_leaves = -(-length // PAD_CHUNK_BYTES)
        # Precondition for the scoping claim: the corrupted slot must not
        # span the whole round (seed-dependent; fails loudly on drift).
        assert span < total_leaves
        # Pad re-verification was scoped to the slot's leaf span, and the
        # SHAKE re-derivation stopped at the slot's last chunk instead of
        # the full round length.
        assert counters.pad_chunks_reverified == span * participants
        assert counters.pad_chunks_reverified < total_leaves * participants
        derive_len = min(length, (last_leaf + 1) * PAD_CHUNK_BYTES)
        assert counters.pad_bytes_rederived == derive_len * participants
        # Proof work tracked per chunk actually opened.
        assert counters.replay_chunks_opened == blame.chunks_replayed

    def test_full_slot_replayed_when_corruption_is_in_last_chunk(self):
        """Worst case for the lazy walk: every chunk opens, same verdicts
        as the pre-Merkle whole-slot replay."""
        from repro.core.config import Policy
        from repro.verdict.hybrid import build_hybrid_with_disruptor

        session, victim_slot = build_hybrid_with_disruptor(
            num_servers=2,
            num_clients=4,
            disruptor_index=3,
            victim_index=1,
            seed=9,
            policy=Policy(initial_slot_payload=64),
        )
        session.post(1, b"y" * 60)
        for _ in range(6):
            session.run_round()
            if session.blames:
                break
        blame = session.blames[-1]
        assert blame.status == "blamed"
        assert 3 in blame.client_culprits
        assert 1 <= blame.chunks_replayed <= blame.total_chunks


# ---------------------------------------------------------------------------
# Policy integration
# ---------------------------------------------------------------------------


class TestModePolicy:
    def test_build_session_dispatches_on_mode(self):
        xor = build_session(num_clients=3, num_servers=2, seed=1)
        assert type(xor) is DissentSession
        hybrid = build_session(
            num_clients=3,
            num_servers=2,
            seed=1,
            policy=Policy(dcnet_mode="hybrid"),
        )
        assert isinstance(hybrid, HybridSession)
        verifiable = build_session(
            num_clients=3,
            num_servers=2,
            seed=1,
            policy=Policy(dcnet_mode="verifiable", initial_slot_payload=24),
        )
        assert isinstance(verifiable, VerdictSession)

    def test_invalid_mode_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            Policy(dcnet_mode="quantum")

    def test_mode_round_trips_through_policy_serialization(self):
        policy = Policy(dcnet_mode="hybrid")
        assert Policy.from_dict(policy.to_dict()) == policy
        # Old serialized policies without the field still parse.
        legacy = policy.to_dict()
        del legacy["dcnet_mode"]
        assert Policy.from_dict(legacy).dcnet_mode == "xor"


# ---------------------------------------------------------------------------
# Batched verification and share cross-checking
# ---------------------------------------------------------------------------


class TestBatchedVerdictPaths:
    def test_mixed_batch_matches_per_proof_culprits(self):
        """Batched rejection equals per-proof rejection, disruptors and all."""
        from repro.verdict.ciphertext import batch_verify_client_ciphertexts

        session = VerdictSession.build(
            num_servers=2,
            num_clients=5,
            seed=6,
            slot_payload=48,
            client_factories={
                1: partial(DisruptingVerdictClient),
                3: partial(DisruptingVerdictClient),
            },
        )
        slot_index = 0
        submissions = [c.submit(0, slot_index, session.width) for c in session.clients]
        server = session.servers[0]
        per_proof = {
            s.client_index
            for s in submissions
            if not verify_client_ciphertext(
                session.group,
                server.combined_key,
                server.slot_keys[slot_index],
                server.session_id,
                0,
                slot_index,
                session.width,
                s,
            )
        }
        batched = batch_verify_client_ciphertexts(
            session.group,
            server.combined_key,
            server.slot_keys[slot_index],
            server.session_id,
            0,
            slot_index,
            session.width,
            submissions,
        )
        assert per_proof == {1, 3}
        assert batched == per_proof

    def test_width_mismatch_rejected_in_batch(self):
        session = VerdictSession.build(
            num_servers=2, num_clients=3, seed=2, slot_payload=48
        )
        submissions = [c.submit(0, 0, session.width) for c in session.clients]
        truncated = VerdictClientCiphertext(
            submissions[1].client_index,
            submissions[1].ciphertexts[:-1],
            submissions[1].proofs[:-1],
        )
        submissions[1] = truncated
        rejected = session.servers[0].verify_submissions(0, 0, session.width, submissions)
        assert rejected == {1}

    def test_bad_share_named_by_every_honest_server(self):
        """A lying server is blamed by all verifiers, not a designated one."""
        from repro.verdict.ciphertext import VerdictServerShare

        session = VerdictSession.build(
            num_servers=3, num_clients=4, seed=5, slot_payload=24
        )
        liar = session.servers[1]
        honest_make = liar.make_share

        def lying_make(round_number, slot_index, a_parts):
            share = honest_make(round_number, slot_index, a_parts)
            garbled = tuple(
                liar.group.mul(s, liar.group.g) for s in share.shares
            )
            return VerdictServerShare(liar.index, garbled, share.proofs)

        liar.make_share = lying_make
        session.post(0, b"x")
        record = session.run_round()
        assert record.blamed_servers == (1,)
        assert not record.completed
        # Every server independently reached the same verdict (the session
        # cross-checks agreement; disagreement raises ProtocolError) and
        # did the share-checking work.
        for server in session.servers:
            assert server.counters.share_proofs_checked == 3 * session.width

    def test_share_vote_agreement_is_per_server(self):
        """Each server's verify_shares names the same culprit directly."""
        from repro.verdict.ciphertext import VerdictServerShare

        session = VerdictSession.build(
            num_servers=3, num_clients=3, seed=8, slot_payload=24
        )
        submissions = [c.submit(0, 0, session.width) for c in session.clients]
        from repro.verdict.ciphertext import combine_client_ciphertexts

        a_parts, _ = combine_client_ciphertexts(
            session.group, submissions, session.width
        )
        shares = [s.make_share(0, 0, a_parts) for s in session.servers]
        garbled = tuple(
            session.group.mul(x, session.group.g) for x in shares[2].shares
        )
        shares[2] = VerdictServerShare(2, garbled, shares[2].proofs)
        votes = [
            server.verify_shares(0, 0, a_parts, shares)
            for server in session.servers
        ]
        assert votes == [(2,), (2,), (2,)]


class TestVerdictCounters:
    def test_client_proofs_made_wired_and_summed(self):
        session = VerdictSession.build(
            num_servers=2, num_clients=3, seed=4, slot_payload=24
        )
        session.post(0, b"count me")
        session.run_round()
        total = session.total_counters()
        assert total.client_proofs_made == 3 * session.width
        # Both servers checked every made proof.
        assert total.client_proofs_checked == 2 * total.client_proofs_made
        session.run_round()
        assert session.total_counters().client_proofs_made == 6 * session.width


class TestRunUntilQuietOutcome:
    def test_drained_on_final_round_distinguished(self):
        session = VerdictSession.build(
            num_servers=2, num_clients=3, seed=11, slot_payload=24
        )
        sender = 0
        slot = session.clients[sender].slot
        session.post(sender, b"tight budget")
        # The sender's slot is served in round `slot`; draining takes
        # exactly slot + 1 rounds — grant precisely that many.
        outcome = session.run_until_quiet(max_rounds=slot + 1)
        assert outcome.drained
        assert outcome.rounds_used == slot + 1
        assert bool(outcome)

    def test_undrained_budget_reported(self):
        session = VerdictSession.build(
            num_servers=2, num_clients=3, seed=11, slot_payload=24
        )
        session.post(0, b"never sent")
        outcome = session.run_until_quiet(max_rounds=0)
        assert not outcome.drained
        assert outcome.rounds_used == 0
        assert not bool(outcome)

    def test_xor_session_reports_drained(self):
        session = DissentSession.build(num_servers=2, num_clients=4, seed=3)
        session.setup()
        session.post(1, b"hello")
        outcome = session.run_until_quiet()
        assert outcome.drained
        assert outcome.rounds_used > 0
        undrained = DissentSession.build(num_servers=2, num_clients=4, seed=3)
        undrained.setup()
        undrained.post(1, b"stuck")
        assert not undrained.run_until_quiet(max_rounds=0).drained


# ---------------------------------------------------------------------------
# Hybrid mode everywhere: apps and churn scenarios, unchanged
# ---------------------------------------------------------------------------


class TestHybridEverywhere:
    def test_microblog_feed_runs_unchanged_over_hybrid(self):
        from repro.apps import MicroblogFeed

        session = build_session(
            num_servers=3,
            num_clients=8,
            seed=7,
            policy=Policy(alpha=0.5, dcnet_mode="hybrid"),
        )
        assert isinstance(session, HybridSession)
        session.setup()
        feed = MicroblogFeed(session)
        churn_rng = random.Random(42)
        for author, text in ((1, "hybrid post one"), (4, "hybrid post two")):
            feed.post(author, text)
            for _ in range(3):
                online = {
                    i for i in range(8) if churn_rng.random() < 0.8
                } | {author}
                feed.run_round(online)
        texts = [post.text for post in feed.timeline()]
        assert "hybrid post one" in texts
        assert "hybrid post two" in texts
        assert session.hybrid_counters.accusation_shuffles == 0

    def test_filesharing_runs_unchanged_over_hybrid(self):
        from repro.apps.filesharing import FileSharingApp, file_digest

        session = build_session(
            num_servers=2,
            num_clients=4,
            seed=9,
            policy=Policy(dcnet_mode="hybrid"),
        )
        assert isinstance(session, HybridSession)
        session.setup()
        app = FileSharingApp(session, chunk_payload=200)
        data = bytes(range(256)) * 3
        file_id = app.share(1, data)
        result = app.run_until_complete(file_id, max_rounds=48)
        assert result == data
        assert file_digest(result) == file_digest(data)
        assert session.hybrid_counters.fast_rounds > 0

    def test_hybrid_session_in_churn_scenario(self):
        from repro.sim.churn import SessionChurnModel, drive_session_under_churn

        session, _ = build_hybrid_with_disruptor(
            seed=33, flips_per_round=3, policy=Policy(alpha=0.2)
        )
        session.post(1, b"churned target")
        model = SessionChurnModel(
            mean_session_rounds=8.0, mean_offline_rounds=3.0
        )
        participations = drive_session_under_churn(
            session, model, rounds=16, rng=random.Random(5)
        )
        assert len(participations) == 16
        assert session.round_number == 16
        # The hybrid invariant holds under churn too: disruption (if any
        # surfaced) is handled by replay, never by an accusation shuffle.
        assert session.hybrid_counters.accusation_shuffles == 0
        for blame in session.blames:
            if blame.status == "blamed":
                assert blame.client_culprits == (4,)
