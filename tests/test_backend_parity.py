"""Cross-backend parity: the modp and EC backends under every consumer.

Every property here runs on both a modp group and the ristretto255 EC
backend through the same abstract :class:`repro.crypto.groups.Group`
interface: proofs, batched signature verification with bisection blame,
shuffle transcripts, and full lockstep sessions.  Sessions must be
bit-identical run-to-run *within* a backend, and deliver identical
cleartexts *across* backends for the same seed.

Also home to the backend registry/selection tests, the ristretto test
vectors, the EC-sized wire-frame regression (satellite of the audit for
hardcoded 1536-bit size assumptions), the hello backend handshake, and
the per-backend crypto counters.
"""

import asyncio
import random

import pytest

from repro.core.config import GroupDefinition, Policy, make_group_definition
from repro.core.session import DissentSession, build_session
from repro.crypto import elgamal, proofs, schnorr, shuffle
from repro.crypto.ec25519 import ec_group
from repro.crypto.groups import (
    BACKEND_ENV,
    GROUP_FACTORIES,
    default_group_name,
    group_by_name,
    resolve_group_name,
    wide_group,
)
from repro.crypto.groups import testing_group as modp_group
from repro.crypto.keys import PrivateKey
from repro.errors import ConfigError, CryptoError, GroupBackendMismatch
from repro.obs import metrics as _metrics

#: The two backends every parity property must hold on.  ``test-256`` is
#: the fast modp representative (same code path as modp1536/modp2048,
#: shorter modulus); ``ec25519`` is the ristretto255 backend.
BACKENDS = ("test-256", "ec25519")

SOUNDNESS = 4  # cut-and-choose bits; small for speed


@pytest.fixture(scope="module", params=BACKENDS)
def bgroup(request):
    return group_by_name(request.param)


@pytest.fixture
def brng():
    return random.Random(0xBACC)


# ---------------------------------------------------------------------------
# Registry and selection
# ---------------------------------------------------------------------------


class TestBackendRegistry:
    def test_aliases_share_instances(self):
        assert group_by_name("modp1536") is group_by_name("wide-1536")
        assert group_by_name("modp2048") is group_by_name("production-2048")
        assert group_by_name("ec25519") is ec_group()

    def test_backend_names_and_widths(self):
        assert wide_group().name == "modp1536"
        assert wide_group().element_bytes == 192
        ec = ec_group()
        assert ec.name == "ec25519"
        assert ec.element_bytes == 32
        assert ec.scalar_bytes == 32
        assert not ec.is_toy
        assert modp_group().is_toy

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigError, match="unknown group"):
            group_by_name("modp-doesnt-exist")

    def test_env_steers_default(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert default_group_name() == "test-256"
        monkeypatch.setenv(BACKEND_ENV, "ec25519")
        assert default_group_name() == "ec25519"
        monkeypatch.setenv(BACKEND_ENV, "bogus")
        with pytest.raises(ConfigError, match=BACKEND_ENV):
            default_group_name()

    def test_resolution_order(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "tiny-64")
        policy = Policy(group_backend="test-512")
        # Explicit beats policy beats environment.
        assert resolve_group_name("ec25519", policy) == "ec25519"
        assert resolve_group_name(None, policy) == "test-512"
        assert resolve_group_name(None, Policy()) == "tiny-64"

    def test_policy_rejects_unknown_backend(self):
        with pytest.raises(ConfigError, match="group_backend"):
            Policy(group_backend="modp-unknown")

    def test_definition_rejects_mismatched_policy_backend(self, brng):
        group = modp_group()
        keys = [PrivateKey.generate(group, brng).public for _ in range(2)]
        with pytest.raises(ConfigError, match="policy selects backend"):
            make_group_definition(
                "test-256", keys[:1], keys[1:], Policy(group_backend="ec25519")
            )
        # Aliases of the same group are consistent, not a mismatch.
        definition = make_group_definition(
            "wide-1536",
            [PrivateKey.generate(wide_group(), brng).public],
            [PrivateKey.generate(wide_group(), brng).public],
            Policy(group_backend="modp1536"),
        )
        assert definition.group is wide_group()

    def test_policy_backend_steers_build_session(self):
        session = build_session(
            num_servers=2,
            num_clients=3,
            seed=5,
            policy=Policy(group_backend="tiny-64"),
        )
        assert session.definition.group.name == "tiny-64"

    def test_policy_dict_roundtrip_carries_backend(self):
        policy = Policy(group_backend="ec25519")
        assert Policy.from_dict(policy.to_dict()) == policy
        # Old serialized policies without the field still parse.
        legacy = policy.to_dict()
        del legacy["group_backend"]
        assert Policy.from_dict(legacy).group_backend == "auto"


# ---------------------------------------------------------------------------
# Ristretto255 vectors (RFC 9496)
# ---------------------------------------------------------------------------


class TestRistrettoVectors:
    def test_basepoint_encoding(self):
        ec = ec_group()
        assert ec.element_to_bytes(ec.g).hex() == (
            "e2f2ae0a6abc4e71a884a961c500515f"
            "58e30b6aa582dd8db6a65945e08d2d76"
        )

    def test_identity_is_all_zero(self):
        ec = ec_group()
        assert ec.identity() == 0
        assert ec.element_to_bytes(0) == bytes(32)
        assert ec.is_element(0)

    def test_small_multiples_consistent(self):
        ec = ec_group()
        doubled = ec.mul(ec.g, ec.g)
        assert doubled == ec.exp(ec.g, 2) == ec.exp_g(2)
        assert ec.mul(doubled, ec.inv(ec.g)) == ec.g

    def test_non_canonical_encodings_rejected(self):
        ec = ec_group()
        # Field value p (non-canonical zero) and an odd ("negative") value.
        p_le = (2**255 - 19).to_bytes(32, "little")
        assert not ec.is_element(int.from_bytes(p_le, "big"))
        one_le = (1).to_bytes(32, "little")
        assert not ec.is_element(int.from_bytes(one_le, "big"))
        with pytest.raises(CryptoError):
            ec.element_from_bytes(b"\xff" * 32)


# ---------------------------------------------------------------------------
# Group contract
# ---------------------------------------------------------------------------


class TestGroupContract:
    def test_group_laws(self, bgroup, brng):
        g = bgroup
        a, b = g.random_scalar(brng), g.random_scalar(brng)
        x = g.exp_g(a)
        assert g.is_element(x)
        assert x == g.exp(g.g, a)
        assert g.exp(x, b) == g.exp_g(a * b % g.q)
        assert g.mul(g.exp_g(a), g.exp_g(b)) == g.exp_g((a + b) % g.q)
        assert g.mul(x, g.inv(x)) == g.identity()
        assert g.exp(x, 0) == g.identity()
        assert g.exp(x, -1) == g.inv(x)
        assert g.exp_fixed(x, b) == g.exp(x, b)

    def test_multiexp_matches_naive_product(self, bgroup, brng):
        g = bgroup
        pairs = [
            (g.random_element(brng), brng.randrange(-g.q, g.q))
            for _ in range(17)
        ]
        pairs.append((g.g, 12345))
        pairs.append((pairs[0][0], 777))  # duplicate base merge
        expected = g.identity()
        for base, exponent in pairs:
            expected = g.mul(expected, g.exp(base, exponent))
        assert g.multiexp(pairs) == expected
        assert g.multiexp(pairs, hot_bases=[pairs[0][0]]) == expected
        assert g.multiexp([]) == g.identity()

    def test_element_bytes_roundtrip(self, bgroup, brng):
        g = bgroup
        x = g.random_element(brng)
        data = g.element_to_bytes(x)
        assert len(data) == g.element_bytes
        assert g.element_from_bytes(data) == x
        with pytest.raises(CryptoError):
            g.element_from_bytes(data + b"\x00")

    def test_membership_validation(self, bgroup, brng):
        g = bgroup
        assert not g.is_element(-1)
        assert not g.is_element(1 << (8 * g.element_bytes + 1))
        rejected = sum(
            not g.is_element(brng.getrandbits(8 * g.element_bytes))
            for _ in range(8)
        )
        assert rejected > 0  # random junk can't all be valid encodings
        with pytest.raises(CryptoError):
            g.require_element(-1)

    def test_message_embedding_roundtrip(self, bgroup):
        g = bgroup
        if g.message_bytes < 5:
            pytest.skip("group too small to embed test messages")
        for message in (b"", b"\x00\x00lead", b"x" * g.message_bytes):
            element = g.encode_message(message)
            assert g.is_element(element)
            assert g.decode_message(element) == message
        with pytest.raises(CryptoError):
            g.encode_message(b"y" * (g.message_bytes + 1))

    def test_hash_to_scalar_domain_separation(self):
        modp, ec = modp_group(), ec_group()
        parts = (b"ctx", b"transcript")
        a, b = modp.hash_to_scalar(*parts), ec.hash_to_scalar(*parts)
        assert 0 <= a < modp.q and 0 <= b < ec.q
        assert a != b  # backend name is bound into the domain
        assert modp.hash_to_scalar(*parts) == a  # deterministic


# ---------------------------------------------------------------------------
# Proofs, signatures, blame — parity
# ---------------------------------------------------------------------------


class TestProofParity:
    def test_dleq_batch_and_bisection(self, bgroup, brng):
        g = bgroup
        items = []
        for i in range(6):
            x = g.random_scalar(brng)
            h = g.random_element(brng)
            proof = proofs.prove_dleq(g, x, h, context=b"p%d" % i)
            items.append((g.exp_g(x), h, g.exp(h, x), proof, b"p%d" % i))
        assert proofs.batch_verify_dleq(g, items)
        bad = list(items)
        bad[1] = (*bad[1][:4], b"wrong-context")
        bad[4] = (g.random_element(brng), *bad[4][1:])
        assert not proofs.batch_verify_dleq(g, bad)
        assert proofs.find_invalid_dleq(g, bad) == (1, 4)

    def test_dleq_or_batch_and_bisection(self, bgroup, brng):
        g = bgroup
        items = []
        for i in range(4):
            x = g.random_scalar(brng)
            h = g.random_element(brng)
            real = (g.exp_g(x), h, g.exp(h, x))
            fake = (g.random_element(brng), h, g.random_element(brng))
            statements = (real, fake) if i % 2 == 0 else (fake, real)
            proof = proofs.prove_dleq_or(
                g, statements, i % 2, x, context=b"or%d" % i, rng=brng
            )
            items.append((statements, proof, b"or%d" % i))
        assert proofs.batch_verify_dleq_or(g, items)
        bad = list(items)
        bad[2] = (bad[2][0], bad[2][1], b"tampered")
        assert not proofs.batch_verify_dleq_or(g, bad)
        assert proofs.find_invalid_dleq_or(g, bad) == (2,)


class TestSchnorrParity:
    def test_batch_verify_and_blame(self, bgroup, brng):
        g = bgroup
        keys = [PrivateKey.generate(g, brng) for _ in range(4)]
        items = [
            (key.public, b"msg-%d" % i, schnorr.sign(key, b"msg-%d" % i))
            for i, key in enumerate(keys)
        ]
        assert schnorr.batch_verify(items)
        bad = list(items)
        bad[2] = (bad[2][0], b"forged", bad[2][2])
        assert not schnorr.batch_verify(bad)
        assert schnorr.find_invalid(bad) == (2,)

    def test_elgamal_layering(self, bgroup, brng):
        g = bgroup
        servers = [PrivateKey.generate(g, brng) for _ in range(3)]
        publics = [key.public for key in servers]
        plain = g.random_element(brng)
        ct = elgamal.encrypt_layered(publics, plain, r=brng.randrange(1, g.q))
        for key in reversed(servers):
            ct = elgamal.strip_layer(key, ct)
        assert elgamal.final_plaintext(g, ct) == plain


class TestShuffleParity:
    def test_transcript_verifies_and_binds_context(self, bgroup, brng):
        g = bgroup
        servers = [PrivateKey.generate(g, brng) for _ in range(2)]
        publics = [key.public for key in servers]
        elements = [g.random_element(brng) for _ in range(4)]
        inputs = [
            shuffle.prepare_element_input(publics, e, brng) for e in elements
        ]
        transcript = shuffle.run_cascade(servers, inputs, SOUNDNESS, b"ctx", brng)
        assert shuffle.verify_transcript(publics, transcript, b"ctx", SOUNDNESS)
        assert not shuffle.verify_transcript(
            publics, transcript, b"other", SOUNDNESS
        )
        assert sorted(transcript.outputs(g)) == sorted(elements)

    def test_message_shuffle_roundtrip(self, bgroup, brng):
        g = bgroup
        if g.message_bytes < 5:
            pytest.skip("group too small to embed test messages")
        servers = [PrivateKey.generate(g, brng) for _ in range(2)]
        publics = [key.public for key in servers]
        width = shuffle.message_vector_width(g, 40)
        messages = [b"anon message %d" % i for i in range(3)]
        inputs = [
            shuffle.prepare_message_input(publics, m, width, brng)
            for m in messages
        ]
        transcript = shuffle.run_cascade(servers, inputs, SOUNDNESS, b"m", brng)
        assert shuffle.verify_transcript(publics, transcript, b"m", SOUNDNESS)
        decoded = sorted(
            shuffle.decode_message_output(g, vector)
            for vector in transcript.output_vectors(g)
        )
        assert decoded == sorted(messages)


# ---------------------------------------------------------------------------
# Full sessions — bit-identical per backend, same cleartexts across
# ---------------------------------------------------------------------------


def _run_lockstep(backend: str, seed: int = 77):
    session = DissentSession.build(
        group_name=backend,
        num_servers=2,
        num_clients=3,
        policy=Policy(shuffle_soundness_bits=SOUNDNESS),
        seed=seed,
    )
    session.setup()
    session.post(0, b"alpha")
    session.post(2, b"bravo")
    session.run_rounds(2)
    digest = [
        (
            r.round_number,
            r.status.name,
            r.output.cleartext if r.output else b"",
        )
        for r in session.records
    ]
    return session.delivered_messages(), digest


class TestSessionParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_lockstep_bit_identical_within_backend(self, backend):
        first = _run_lockstep(backend)
        second = _run_lockstep(backend)
        assert first == second

    def test_same_cleartexts_across_backends(self):
        modp_delivered, modp_digest = _run_lockstep(BACKENDS[0])
        ec_delivered, ec_digest = _run_lockstep(BACKENDS[1])
        assert modp_delivered == ec_delivered
        assert [d[:2] for d in modp_digest] == [d[:2] for d in ec_digest]
        assert b"alpha" in b"".join(body for _, _, body in modp_delivered)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_verdict_session_round(self, backend):
        from repro.verdict.session import VerdictSession

        session = VerdictSession.build(
            num_servers=2,
            num_clients=3,
            group_name=backend,
            seed=9,
            slot_payload=24,
        )
        session.post(0, b"proved")
        session.run_until_quiet()
        delivered = {m for _, _, m in session.delivered_messages(0)}
        assert b"proved" in delivered


# ---------------------------------------------------------------------------
# EC-sized wire frames (regression for the element-size audit)
# ---------------------------------------------------------------------------


class TestEcWireFrames:
    def test_envelope_roundtrip_ec_sized(self, brng):
        from repro.net.message import make_envelope
        from repro.net.wire import decode_envelope, encode_envelope

        for backend in BACKENDS:
            g = group_by_name(backend)
            key = PrivateKey.generate(g, brng)
            envelope = make_envelope(
                key, "client-ciphertext", "client-0", b"\x11" * 32, 3, b"payload"
            )
            data = encode_envelope(g, envelope)
            assert decode_envelope(g, data) == envelope
            # Signature framing must follow the backend's element width,
            # not a 192-byte modp assumption.
            assert (
                g.element_bytes + g.scalar_bytes
                < len(data)
                <= g.element_bytes + g.scalar_bytes + 200
            )

    def test_ec_frames_reject_modp_sized_signature(self, brng):
        from repro.net.message import make_envelope
        from repro.net.wire import decode_envelope, encode_envelope
        from repro.errors import WireDecodeError

        modp = wide_group()
        key = PrivateKey.generate(modp, brng)
        envelope = make_envelope(
            key, "client-ciphertext", "client-0", b"\x22" * 32, 1, b"x"
        )
        data = encode_envelope(modp, envelope)
        # A 192-byte-element frame must not decode under the 32-byte EC
        # layout (this is why the hello handshake pins the backend).
        with pytest.raises(WireDecodeError):
            decode_envelope(ec_group(), data)

    def test_accusation_and_rebuttal_ec_sized(self, brng):
        from repro.core.accusation import (
            accusation_max_bytes,
            make_accusation,
            make_rebuttal,
            verify_rebuttal,
        )
        from repro.net.wire import (
            decode_accusation,
            decode_rebuttal,
            encode_accusation,
            encode_rebuttal,
        )

        g = ec_group()
        pseudonym = PrivateKey.generate(g, brng)
        accusation = make_accusation(
            pseudonym, g, round_number=4, slot_index=1, bit_index=17
        )
        data = encode_accusation(g, accusation)
        assert decode_accusation(g, data) == accusation
        assert len(data) <= accusation_max_bytes(g)

        client = PrivateKey.generate(g, brng)
        server = PrivateKey.generate(g, brng)
        rebuttal = make_rebuttal(client, server.public, server_index=0)
        assert verify_rebuttal(g, client.public, server.public, rebuttal)
        wire = encode_rebuttal(g, rebuttal)
        assert decode_rebuttal(g, wire) == rebuttal
        # EC frames are an order of magnitude smaller than 1536-bit ones.
        wide = wide_group()
        wide_client = PrivateKey.generate(wide, brng)
        wide_server = PrivateKey.generate(wide, brng)
        wide_wire = encode_rebuttal(
            wide, make_rebuttal(wide_client, wide_server.public, 0)
        )
        assert len(wire) < len(wide_wire) // 4


# ---------------------------------------------------------------------------
# Wire-visible backend handshake
# ---------------------------------------------------------------------------


class TestHelloBackendHandshake:
    def _hello(self, sender: str, group) -> bytes:
        from repro.net.wire import encode_routed
        from repro.util.serialization import pack_fields

        return encode_routed(
            "coord",
            sender,
            "hello",
            0,
            pack_fields(group.name, group.element_bytes),
        )

    def test_mismatched_backend_fails_fast_with_typed_error(self):
        from repro.net.runner import _Hub
        from repro.net.transport import loopback_pair

        async def scenario():
            hub = _Hub(group=ec_group())
            hub.expect(["server-0"])
            ours, theirs = loopback_pair()
            task = asyncio.ensure_future(hub.attach(ours))
            await theirs.send(self._hello("server-0", wide_group()))
            with pytest.raises(GroupBackendMismatch, match="modp1536"):
                await hub.wait_ready(timeout=5.0)
            await theirs.aclose()
            await task

        asyncio.run(scenario())

    def test_matching_backend_registers(self):
        from repro.net.runner import _Hub
        from repro.net.transport import loopback_pair

        async def scenario():
            hub = _Hub(group=ec_group())
            hub.expect(["server-0"])
            ours, theirs = loopback_pair()
            task = asyncio.ensure_future(hub.attach(ours))
            await theirs.send(self._hello("server-0", ec_group()))
            await hub.wait_ready(timeout=5.0)
            assert "server-0" in hub.transports
            await theirs.aclose()
            await task

        asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Per-backend instrumentation
# ---------------------------------------------------------------------------


class TestBackendCounters:
    def test_crypto_counters_labeled_by_backend(self, brng):
        registry = _metrics.MetricsRegistry()
        old = _metrics.set_global_registry(registry)
        try:
            for backend in BACKENDS:
                g = group_by_name(backend)
                g.exp_g(brng.randrange(1, g.q))
                g.multiexp(
                    [(g.random_element(brng), 3), (g.random_element(brng), 5)]
                )
            counters = registry.snapshot()["counters"]
        finally:
            _metrics.set_global_registry(old)
        for backend in BACKENDS:
            assert counters[f"crypto.fixed_base.exps.{backend}"] > 0
            assert counters[f"crypto.multiexp.calls.{backend}"] > 0
        # Aggregates still roll up across backends.
        assert counters["crypto.multiexp.calls"] == sum(
            counters[f"crypto.multiexp.calls.{b}"] for b in BACKENDS
        )
