"""End-to-end: `NetworkedSession` is bit-identical to `DissentSession`.

The same seed must produce the same keys, slots, round outputs, records,
delivered messages, and blame verdicts whether the protocol runs as
in-process method calls, as asyncio tasks over loopback or real TCP
sockets, or as spawned node subprocesses on localhost — the only thing
that changes is the transport under the signed envelopes.
"""

import random

import pytest

from repro.core import DissentSession
from repro.core.adversary import (
    DisruptingServer,
    DisruptorClient,
    EquivocatingServer,
)
from repro.core.client import DissentClient
from repro.core.server import DissentServer
from repro.core.session import build_keys
from repro.net.runner import NetworkedSession


def build_matched_inprocess(
    group_name="test-256",
    num_servers=3,
    num_clients=8,
    seed=0,
    server_factories=None,
    client_factories=None,
):
    """A DissentSession whose RNG draws mirror NetworkedSession.build."""
    server_factories = server_factories or {}
    client_factories = client_factories or {}
    rng = random.Random(seed)
    built = build_keys(group_name, num_servers, num_clients, None, rng)
    servers = []
    for j, key in enumerate(built.server_keys):
        cls, kwargs = server_factories.get(j, (DissentServer, {}))
        servers.append(
            cls(built.definition, j, key, random.Random(rng.getrandbits(64)), **kwargs)
        )
    clients = []
    for i, key in enumerate(built.client_keys):
        cls, kwargs = client_factories.get(i, (DissentClient, {}))
        clients.append(
            cls(built.definition, i, key, random.Random(rng.getrandbits(64)), **kwargs)
        )
    return DissentSession(built.definition, servers, clients, rng)


def victim_slot_for(seed, num_servers=3, num_clients=8, victim=2):
    """Deterministically discover the victim's slot with a throwaway run."""
    probe = DissentSession.build(
        num_servers=num_servers, num_clients=num_clients, seed=seed
    )
    probe.setup()
    return probe.clients[victim].slot


def drive_honest(session):
    session.setup()
    session.post(2, b"meet at the fountain at noon")
    session.post(5, b"bring the documents")
    records = [session.run_round()]
    records.append(session.run_round({0, 2, 3, 5, 6}))
    records.extend(session.run_rounds(2))
    return records, session.delivered_messages(0), session.delivered_messages(3)


def drive_blame(session, victim=2, rounds=14):
    session.setup()
    session.post(victim, b"the message they tried to jam")
    records = []
    verdicts = []
    for _ in range(rounds):
        record = session.run_round()
        records.append(record)
        if record.shuffle_requested:
            verdicts = session.run_accusation_phase()
            if verdicts:
                break
    # Service restored after expulsion: the jammed message gets through.
    outcome = session.run_until_quiet()
    return (
        records,
        verdicts,
        sorted(session.expelled),
        sorted(session.convicted_servers),
        outcome,
        session.delivered_messages(0),
    )


class TestLoopbackParity:
    def test_honest_session_bit_identical(self):
        expected = drive_honest(build_matched_inprocess(seed=2012))
        with NetworkedSession.build(
            num_servers=3, num_clients=8, seed=2012, mode="loopback"
        ) as session:
            actual = drive_honest(session)
        assert actual == expected
        # The partial-online round fell below the §3.7 floor on both sides.
        assert not expected[0][1].completed

    def test_run_until_quiet_parity(self):
        inproc = build_matched_inprocess(num_clients=5, seed=44)
        inproc.setup()
        inproc.post(1, b"drain me")
        expected = inproc.run_until_quiet()
        with NetworkedSession.build(
            num_servers=3, num_clients=5, seed=44, mode="loopback"
        ) as session:
            session.setup()
            session.post(1, b"drain me")
            actual = session.run_until_quiet()
        assert actual == expected
        assert actual.drained

    def test_equivocating_server_convicted_by_wire_rebuttal(self):
        # Trace case (c): the framed client's DLEQ rebuttal crosses the
        # wire and convicts the equivocating server, identically.
        seed = 21
        slot = victim_slot_for(seed, num_clients=6)

        class EquivocatingDisrupting(EquivocatingServer, DisruptingServer):
            pass

        factories = {
            1: (EquivocatingDisrupting, {"target_slot": slot, "frame_client": 2})
        }
        expected = drive_blame(
            build_matched_inprocess(
                num_clients=6, seed=seed, server_factories=factories
            )
        )
        with NetworkedSession.build(
            num_servers=3, num_clients=6, seed=seed, mode="loopback",
            server_factories=factories,
        ) as session:
            actual = drive_blame(session)
        assert actual == expected
        assert expected[3] == [1]  # the lying server, not the honest client
        assert expected[2] == []


class TestTcpParity:
    def test_disruption_and_blame_bit_identical_over_sockets(self):
        # Acceptance scenario: 3 servers / 8 clients over real asyncio TCP,
        # including a disruptor traced, expelled, and service restored.
        seed = 11
        slot = victim_slot_for(seed)
        factories = {5: (DisruptorClient, {"target_slot": slot})}
        expected = drive_blame(
            build_matched_inprocess(seed=seed, client_factories=factories)
        )
        with NetworkedSession.build(
            num_servers=3, num_clients=8, seed=seed, mode="tcp",
            client_factories=factories,
        ) as session:
            actual = drive_blame(session)
        assert actual == expected
        records, verdicts, expelled, convicted, outcome, delivered = expected
        assert expelled == [5] and convicted == []
        assert verdicts[0].culprit_kind == "client"
        assert outcome.drained
        assert b"the message they tried to jam" in [m for _, _, m in delivered]


class TestSubprocessParity:
    def test_spawned_processes_bit_identical(self):
        # 3 servers + 8 clients as real operating-system processes talking
        # to the hub over localhost TCP; the disruptor rides along as a
        # spawned adversarial node class.
        seed = 11
        slot = victim_slot_for(seed)
        factories = {5: (DisruptorClient, {"target_slot": slot})}
        expected = drive_blame(
            build_matched_inprocess(seed=seed, client_factories=factories)
        )
        with NetworkedSession.build(
            num_servers=3, num_clients=8, seed=seed, mode="subprocess",
            client_factories=factories,
        ) as session:
            actual = drive_blame(session)
        assert actual == expected
        assert expected[2] == [5]


class TestSurface:
    def test_setup_twice_rejected(self):
        from repro.errors import ProtocolError

        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=1, mode="loopback"
        ) as session:
            session.setup()
            with pytest.raises(ProtocolError):
                session.setup()

    def test_rounds_before_setup_rejected(self):
        from repro.errors import ProtocolError

        with NetworkedSession.build(
            num_servers=2, num_clients=3, seed=1, mode="loopback"
        ) as session:
            with pytest.raises(ProtocolError):
                session.run_round()

    def test_close_is_idempotent(self):
        session = NetworkedSession.build(
            num_servers=2, num_clients=3, seed=1, mode="loopback"
        )
        session.setup()
        session.close()
        session.close()
