"""Durable checkpoints: store format, audit chain, JSON round-trips.

Every restore parity test goes through real serialization — the state is
checkpointed to a file, read back, and decoded into a *freshly built*
session — so in-memory aliasing can never mask a codec gap.  The
round-trip property must hold on both the modp and the ristretto255
group backends (satellite requirement), including scheduler and PRNG
state.
"""

import json
import os
import random

import pytest

from repro.core import DissentSession
from repro.errors import CheckpointError
from repro.persist import (
    AuditLog,
    read_audit_log,
    read_checkpoint,
    restore_session,
    save_session,
    write_checkpoint,
)
from repro.persist.codec import (
    decode_rng_state,
    decode_scheduler,
    encode_rng_state,
    encode_scheduler,
)

#: Fast modp representative + the EC backend (same pairing the backend
#: parity suite uses); ``modp1536`` gets one slow leg below.
BACKENDS = ("test-256", "ec25519")


def built_session(group_name="test-256", seed=7, num_servers=2, num_clients=3):
    session = DissentSession.build(
        group_name=group_name,
        num_servers=num_servers,
        num_clients=num_clients,
        seed=seed,
    )
    session.setup()
    return session


class TestCheckpointStore:
    def test_write_read_round_trip(self, tmp_path):
        path = tmp_path / "state.ckpt"
        payload = {"rounds": [1, 2, 3], "note": "barrier"}
        written = write_checkpoint(path, payload, kind="session")
        assert written == os.path.getsize(path)
        assert read_checkpoint(path, kind="session") == payload

    def test_missing_file_is_typed(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint"):
            read_checkpoint(tmp_path / "absent.ckpt")

    def test_tampered_payload_fails_checksum(self, tmp_path):
        path = tmp_path / "state.ckpt"
        write_checkpoint(path, {"round": 4}, kind="session")
        document = json.loads(path.read_text())
        document["payload"]["round"] = 5
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="checksum"):
            read_checkpoint(path)

    def test_version_and_kind_are_enforced(self, tmp_path):
        path = tmp_path / "state.ckpt"
        write_checkpoint(path, {"x": 1}, kind="node")
        with pytest.raises(CheckpointError, match="kind"):
            read_checkpoint(path, kind="session")
        document = json.loads(path.read_text())
        document["version"] = 99
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointError, match="version"):
            read_checkpoint(path)

    def test_atomic_replace_keeps_old_on_unencodable(self, tmp_path):
        path = tmp_path / "state.ckpt"
        write_checkpoint(path, {"round": 1}, kind="session")
        with pytest.raises(CheckpointError, match="JSON-encodable"):
            write_checkpoint(path, {"bad": object()}, kind="session")
        # The original checkpoint survives an aborted overwrite.
        assert read_checkpoint(path)["round"] == 1

    def test_checkpoint_metrics(self, tmp_path):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        write_checkpoint(tmp_path / "m.ckpt", {"a": 1}, registry=registry)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["session.checkpoint.bytes"] > 0
        assert snapshot["counters"]["session.checkpoint.seconds"] > 0
        assert "span.phase.checkpoint" in snapshot["histograms"]


class TestAuditLog:
    def test_append_and_verify_chain(self, tmp_path):
        path = tmp_path / "audit.ndjson"
        log = AuditLog(path)
        log.append("abandon", round=3, reason="timeout")
        log.append("expulsion", client=2, reason="dark")
        entries = read_audit_log(path)
        assert [e["event"] for e in entries] == ["abandon", "expulsion"]
        assert entries[1]["prev"] == entries[0]["hash"]

    def test_chain_continues_across_reopen(self, tmp_path):
        path = tmp_path / "audit.ndjson"
        AuditLog(path).append("abandon", round=0)
        reopened = AuditLog(path)
        reopened.append("blame", culprit=1)
        entries = read_audit_log(path)
        assert entries[1]["index"] == 1
        assert entries[1]["prev"] == entries[0]["hash"]

    def test_tampering_breaks_the_chain(self, tmp_path):
        path = tmp_path / "audit.ndjson"
        log = AuditLog(path)
        log.append("abandon", round=0)
        log.append("abandon", round=1)
        lines = path.read_bytes().split(b"\n")
        first = json.loads(lines[0])
        first["data"]["round"] = 9
        lines[0] = json.dumps(first, sort_keys=True, separators=(",", ":")).encode()
        path.write_bytes(b"\n".join(lines))
        with pytest.raises(CheckpointError):
            read_audit_log(path)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "audit.ndjson"
        log = AuditLog(path)
        log.append("abandon", round=0)
        with open(path, "ab") as handle:
            handle.write(b'{"index": 1, "event": "abandon"')  # no newline
        assert len(read_audit_log(path)) == 1

    def test_unknown_event_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="unknown audit event"):
            AuditLog(tmp_path / "a.ndjson").append("surprise")


class TestStateCodecs:
    def test_rng_state_round_trips_through_json(self):
        rng = random.Random(123)
        rng.random()
        encoded = json.loads(json.dumps(encode_rng_state(rng.getstate())))
        clone = random.Random()
        clone.setstate(decode_rng_state(encoded))
        assert [clone.random() for _ in range(8)] == [
            rng.random() for _ in range(8)
        ]

    def test_scheduler_round_trips_through_json(self):
        session = built_session()
        session.post(0, b"fill the scheduler with demand")
        session.run_rounds(2)
        scheduler = session.servers[0].scheduler
        encoded = json.loads(json.dumps(encode_scheduler(scheduler)))
        rebuilt = decode_scheduler(encoded, session.definition.policy)
        assert rebuilt.round_number == scheduler.round_number
        assert (
            rebuilt.current_layout().capacities
            == scheduler.current_layout().capacities
        )


@pytest.mark.parametrize("group_name", BACKENDS)
class TestSessionRoundTrip:
    def test_restored_session_is_bit_identical(self, tmp_path, group_name):
        """Checkpoint at a barrier, restore into a fresh session, and the
        next rounds must be bit-identical to the uninterrupted original —
        scheduler, PRNG, archives, and pseudonym keys all included."""
        path = tmp_path / "session.ckpt"
        session = built_session(group_name=group_name)
        session.post(0, b"before the barrier")
        session.post(2, b"queued across it")
        session.run_rounds(2)
        save_session(session, path)

        fresh = built_session(group_name=group_name)
        restore_session(fresh, path)
        continued = session.run_rounds(3)
        restored = fresh.run_rounds(3)
        assert [r.output.cleartext for r in restored] == [
            r.output.cleartext for r in continued
        ]
        assert fresh.delivered_messages(1) == session.delivered_messages(1)

    def test_checkpoint_file_is_portable_json(self, tmp_path, group_name):
        path = tmp_path / "session.ckpt"
        session = built_session(group_name=group_name)
        session.run_rounds(1)
        save_session(session, path)
        document = json.loads(path.read_text())
        assert document["kind"] == "session"
        payload = document["payload"]
        assert payload["round_number"] == 1
        assert len(payload["servers"]) == 2
        assert len(payload["clients"]) == 3


class TestModpWideBackend:
    def test_modp1536_round_trips_once(self, tmp_path):
        """One slow leg on the real 1536-bit modulus: the hex codecs must
        not assume the test group's element width."""
        path = tmp_path / "wide.ckpt"
        session = built_session(group_name="modp1536", seed=3)
        session.post(1, b"wide")
        session.run_rounds(1)
        save_session(session, path)
        fresh = built_session(group_name="modp1536", seed=3)
        restore_session(fresh, path)
        continued = session.run_rounds(1)
        restored = fresh.run_rounds(1)
        assert [r.output.cleartext for r in restored] == [
            r.output.cleartext for r in continued
        ]


class TestMismatchedRestore:
    def test_wrong_group_size_is_refused(self, tmp_path):
        path = tmp_path / "session.ckpt"
        session = built_session()
        session.run_rounds(1)
        save_session(session, path)
        other = DissentSession.build(num_servers=3, num_clients=3, seed=7)
        other.setup()
        with pytest.raises(CheckpointError):
            restore_session(other, path)
