"""Unit tests for ZK proofs and the randomized padding scheme."""

import pytest

from repro.crypto import padding, proofs
from repro.crypto.keys import PrivateKey
from repro.errors import InvalidProof, PaddingError


class TestSchnorrPok:
    def test_prove_verify(self, group, rng):
        x = group.random_scalar(rng)
        proof = proofs.prove_dlog(group, x)
        assert proofs.verify_dlog(group, group.exp(group.g, x), proof)

    def test_wrong_statement_fails(self, group, rng):
        x = group.random_scalar(rng)
        proof = proofs.prove_dlog(group, x)
        assert not proofs.verify_dlog(group, group.exp(group.g, x + 1), proof)

    def test_context_binding(self, group, rng):
        x = group.random_scalar(rng)
        proof = proofs.prove_dlog(group, x, context=b"phase-1")
        y = group.exp(group.g, x)
        assert proofs.verify_dlog(group, y, proof, context=b"phase-1")
        assert not proofs.verify_dlog(group, y, proof, context=b"phase-2")

    def test_non_element_statement_fails(self, group, rng):
        proof = proofs.prove_dlog(group, group.random_scalar(rng))
        assert not proofs.verify_dlog(group, group.p - 1, proof)


class TestChaumPedersen:
    def test_prove_verify(self, group, rng):
        x = group.random_scalar(rng)
        h = group.random_element(rng)
        proof = proofs.prove_dleq(group, x, h)
        assert proofs.verify_dleq(
            group, group.exp(group.g, x), h, group.exp(h, x), proof
        )

    def test_unequal_logs_fail(self, group, rng):
        x = group.random_scalar(rng)
        h = group.random_element(rng)
        proof = proofs.prove_dleq(group, x, h)
        wrong_v = group.exp(h, x + 1)
        assert not proofs.verify_dleq(group, group.exp(group.g, x), h, wrong_v, proof)

    def test_tampered_proof_fails(self, group, rng):
        x = group.random_scalar(rng)
        h = group.random_element(rng)
        proof = proofs.prove_dleq(group, x, h)
        bad = proofs.DleqProof(proof.c, (proof.s + 1) % group.q)
        assert not proofs.verify_dleq(group, group.exp(group.g, x), h, group.exp(h, x), bad)

    def test_context_binding(self, group, rng):
        x = group.random_scalar(rng)
        h = group.random_element(rng)
        proof = proofs.prove_dleq(group, x, h, context=b"rebuttal")
        u, v = group.exp(group.g, x), group.exp(h, x)
        assert proofs.verify_dleq(group, u, h, v, proof, context=b"rebuttal")
        assert not proofs.verify_dleq(group, u, h, v, proof, context=b"strip")

    def test_require_dleq_raises(self, group, rng):
        x = group.random_scalar(rng)
        h = group.random_element(rng)
        proof = proofs.prove_dleq(group, x, h)
        with pytest.raises(InvalidProof):
            proofs.require_dleq(group, group.exp(group.g, x + 1), h, group.exp(h, x), proof)

    def test_dh_rebuttal_shape(self, group, rng):
        # The accusation rebuttal instantiation: u = client pub, h = server
        # pub, v = shared DH element.
        client = PrivateKey.generate(group, rng)
        server = PrivateKey.generate(group, rng)
        shared = group.exp(server.y, client.x)
        proof = proofs.prove_dleq(group, client.x, server.y)
        assert proofs.verify_dleq(group, client.y, server.y, shared, proof)


class TestPadding:
    def test_roundtrip(self):
        for message in (b"", b"x", b"hello world", bytes(1000)):
            assert padding.decode(padding.encode(message)) == message

    def test_length_arithmetic(self):
        assert padding.padded_length(100) == 100 + padding.OVERHEAD
        assert padding.max_message_length(padding.padded_length(100)) == 100

    def test_max_message_length_small_slot(self):
        assert padding.max_message_length(3) == 0

    def test_encoding_randomized(self):
        assert padding.encode(b"same") != padding.encode(b"same")

    def test_explicit_seed_deterministic(self):
        seed = b"\x05" * padding.SEED_BYTES
        assert padding.encode(b"m", seed) == padding.encode(b"m", seed)

    def test_bad_seed_width(self):
        with pytest.raises(PaddingError):
            padding.encode(b"m", seed=b"short")

    def test_corruption_detected_everywhere(self):
        from repro.util.bytesops import flip_bit

        encoded = padding.encode(b"sensitive payload")
        for bit in range(0, 8 * len(encoded), 37):
            assert not padding.is_intact(flip_bit(encoded, bit))

    def test_truncation_detected(self):
        with pytest.raises(PaddingError):
            padding.decode(padding.encode(b"abc")[:-1])

    def test_too_short_rejected(self):
        with pytest.raises(PaddingError):
            padding.decode(b"\x00" * (padding.OVERHEAD - 1))

    def test_masked_payload_differs_from_message(self):
        message = b"\x00" * 64
        encoded = padding.encode(message)
        assert encoded[padding.OVERHEAD:] != message  # masked, not cleartext
