"""Unit tests for ZK proofs and the randomized padding scheme."""

import pytest

from repro.crypto import padding, proofs
from repro.crypto.keys import PrivateKey
from repro.errors import InvalidProof, PaddingError


class TestSchnorrPok:
    def test_prove_verify(self, group, rng):
        x = group.random_scalar(rng)
        proof = proofs.prove_dlog(group, x)
        assert proofs.verify_dlog(group, group.exp(group.g, x), proof)

    def test_wrong_statement_fails(self, group, rng):
        x = group.random_scalar(rng)
        proof = proofs.prove_dlog(group, x)
        assert not proofs.verify_dlog(group, group.exp(group.g, x + 1), proof)

    def test_context_binding(self, group, rng):
        x = group.random_scalar(rng)
        proof = proofs.prove_dlog(group, x, context=b"phase-1")
        y = group.exp(group.g, x)
        assert proofs.verify_dlog(group, y, proof, context=b"phase-1")
        assert not proofs.verify_dlog(group, y, proof, context=b"phase-2")

    def test_non_element_statement_fails(self, group, rng):
        proof = proofs.prove_dlog(group, group.random_scalar(rng))
        assert not proofs.verify_dlog(group, group.p - 1, proof)


class TestChaumPedersen:
    def test_prove_verify(self, group, rng):
        x = group.random_scalar(rng)
        h = group.random_element(rng)
        proof = proofs.prove_dleq(group, x, h)
        assert proofs.verify_dleq(
            group, group.exp(group.g, x), h, group.exp(h, x), proof
        )

    def test_unequal_logs_fail(self, group, rng):
        x = group.random_scalar(rng)
        h = group.random_element(rng)
        proof = proofs.prove_dleq(group, x, h)
        wrong_v = group.exp(h, x + 1)
        assert not proofs.verify_dleq(group, group.exp(group.g, x), h, wrong_v, proof)

    def test_tampered_proof_fails(self, group, rng):
        x = group.random_scalar(rng)
        h = group.random_element(rng)
        proof = proofs.prove_dleq(group, x, h)
        bad = proofs.DleqProof(proof.t1, proof.t2, (proof.s + 1) % group.q)
        assert not proofs.verify_dleq(group, group.exp(group.g, x), h, group.exp(h, x), bad)

    def test_context_binding(self, group, rng):
        x = group.random_scalar(rng)
        h = group.random_element(rng)
        proof = proofs.prove_dleq(group, x, h, context=b"rebuttal")
        u, v = group.exp(group.g, x), group.exp(h, x)
        assert proofs.verify_dleq(group, u, h, v, proof, context=b"rebuttal")
        assert not proofs.verify_dleq(group, u, h, v, proof, context=b"strip")

    def test_require_dleq_raises(self, group, rng):
        x = group.random_scalar(rng)
        h = group.random_element(rng)
        proof = proofs.prove_dleq(group, x, h)
        with pytest.raises(InvalidProof):
            proofs.require_dleq(group, group.exp(group.g, x + 1), h, group.exp(h, x), proof)

    def test_dh_rebuttal_shape(self, group, rng):
        # The accusation rebuttal instantiation: u = client pub, h = server
        # pub, v = shared DH element.
        client = PrivateKey.generate(group, rng)
        server = PrivateKey.generate(group, rng)
        shared = group.exp(server.y, client.x)
        proof = proofs.prove_dleq(group, client.x, server.y)
        assert proofs.verify_dleq(group, client.y, server.y, shared, proof)


class TestPadding:
    def test_roundtrip(self):
        for message in (b"", b"x", b"hello world", bytes(1000)):
            assert padding.decode(padding.encode(message)) == message

    def test_length_arithmetic(self):
        assert padding.padded_length(100) == 100 + padding.OVERHEAD
        assert padding.max_message_length(padding.padded_length(100)) == 100

    def test_max_message_length_small_slot(self):
        assert padding.max_message_length(3) == 0

    def test_encoding_randomized(self):
        assert padding.encode(b"same") != padding.encode(b"same")

    def test_explicit_seed_deterministic(self):
        seed = b"\x05" * padding.SEED_BYTES
        assert padding.encode(b"m", seed) == padding.encode(b"m", seed)

    def test_bad_seed_width(self):
        with pytest.raises(PaddingError):
            padding.encode(b"m", seed=b"short")

    def test_corruption_detected_everywhere(self):
        from repro.util.bytesops import flip_bit

        encoded = padding.encode(b"sensitive payload")
        for bit in range(0, 8 * len(encoded), 37):
            assert not padding.is_intact(flip_bit(encoded, bit))

    def test_truncation_detected(self):
        with pytest.raises(PaddingError):
            padding.decode(padding.encode(b"abc")[:-1])

    def test_too_short_rejected(self):
        with pytest.raises(PaddingError):
            padding.decode(b"\x00" * (padding.OVERHEAD - 1))

    def test_masked_payload_differs_from_message(self):
        message = b"\x00" * 64
        encoded = padding.encode(message)
        assert encoded[padding.OVERHEAD:] != message  # masked, not cleartext


class TestDisjunctiveDleq:
    """The CDS94 OR-composition Verdict's verifiable ciphertexts ride on."""

    def _statements(self, group, rng):
        """An ElGamal-identity branch and a slot-key branch (Verdict shape)."""
        combined = group.random_element(rng)
        r = group.random_scalar(rng)
        identity_branch = (group.exp(group.g, r), combined, group.exp(combined, r))
        slot_secret = group.random_scalar(rng)
        slot_branch = proofs.dlog_statement(group, group.exp(group.g, slot_secret))
        return identity_branch, r, slot_branch, slot_secret

    def test_either_branch_proves(self, group, rng):
        st_a, wit_a, st_b, wit_b = self._statements(group, rng)
        for index, witness in ((0, wit_a), (1, wit_b)):
            proof = proofs.prove_dleq_or(
                group, (st_a, st_b), index, witness, b"ctx", rng
            )
            assert proofs.verify_dleq_or(group, (st_a, st_b), proof, b"ctx")

    def test_transcript_hides_the_real_branch(self, group, rng):
        """Both transcripts have identical shape and verify identically."""
        st_a, wit_a, st_b, wit_b = self._statements(group, rng)
        via_a = proofs.prove_dleq_or(group, (st_a, st_b), 0, wit_a, b"c", rng)
        via_b = proofs.prove_dleq_or(group, (st_a, st_b), 1, wit_b, b"c", rng)
        for proof in (via_a, via_b):
            assert proofs.verify_dleq_or(group, (st_a, st_b), proof, b"c")
            assert {type(v) for v in (proof.c1, proof.s1, proof.s2)} == {int}

    def test_one_false_branch_still_proves(self, group, rng):
        st_a, _, st_b, wit_b = self._statements(group, rng)
        # Garble branch A so it is false; branch B's witness still suffices.
        false_a = (st_a[0], st_a[1], group.mul(st_a[2], group.g))
        proof = proofs.prove_dleq_or(group, (false_a, st_b), 1, wit_b, b"x", rng)
        assert proofs.verify_dleq_or(group, (false_a, st_b), proof, b"x")

    def test_no_witness_cannot_forge(self, group, rng):
        st_a, _, st_b, _ = self._statements(group, rng)
        false_a = (st_a[0], st_a[1], group.mul(st_a[2], group.g))
        # A wrong witness for either branch yields an invalid transcript.
        bogus = group.random_scalar(rng)
        for index in (0, 1):
            proof = proofs.prove_dleq_or(
                group, (false_a, st_b), index, bogus, b"x", rng
            )
            assert not proofs.verify_dleq_or(group, (false_a, st_b), proof, b"x")

    def test_context_binding(self, group, rng):
        st_a, wit_a, st_b, _ = self._statements(group, rng)
        proof = proofs.prove_dleq_or(group, (st_a, st_b), 0, wit_a, b"here", rng)
        assert not proofs.verify_dleq_or(group, (st_a, st_b), proof, b"elsewhere")

    def test_challenge_split_checked(self, group, rng):
        st_a, wit_a, st_b, _ = self._statements(group, rng)
        proof = proofs.prove_dleq_or(group, (st_a, st_b), 0, wit_a, b"s", rng)
        # Shifting challenge mass between branches breaks the equations.
        shifted = proofs.DleqOrProof(
            proof.t11, proof.t12, proof.t21, proof.t22,
            (proof.c1 + 1) % group.q, proof.s1, proof.s2,
        )
        assert not proofs.verify_dleq_or(group, (st_a, st_b), shifted, b"s")

    def test_out_of_range_scalars_rejected(self, group, rng):
        st_a, wit_a, st_b, _ = self._statements(group, rng)
        proof = proofs.prove_dleq_or(group, (st_a, st_b), 0, wit_a, b"s", rng)
        broken = proofs.DleqOrProof(
            proof.t11, proof.t12, proof.t21, proof.t22,
            proof.c1, proof.s1 + group.q, proof.s2,
        )
        assert not proofs.verify_dleq_or(group, (st_a, st_b), broken, b"s")

    def test_invalid_known_index_raises(self, group, rng):
        st_a, wit_a, st_b, _ = self._statements(group, rng)
        with pytest.raises(InvalidProof):
            proofs.prove_dleq_or(group, (st_a, st_b), 2, wit_a)

    def test_dlog_statement_degenerates_to_pok(self, group, rng):
        x = group.random_scalar(rng)
        y = group.exp(group.g, x)
        statement = proofs.dlog_statement(group, y)
        assert statement == (y, group.g, y)


class TestBatchVerification:
    """RLC batches must agree bit-for-bit with per-proof verification."""

    def _dleq_items(self, group, rng, n):
        items = []
        for i in range(n):
            x = group.random_scalar(rng)
            h = group.random_element(rng)
            context = b"batch-%d" % i
            proof = proofs.prove_dleq(group, x, h, context)
            items.append((group.exp(group.g, x), h, group.exp(h, x), proof, context))
        return items

    def _or_items(self, group, rng, n):
        items = []
        for i in range(n):
            combined = group.random_element(rng)
            r = group.random_scalar(rng)
            st_a = (group.exp(group.g, r), combined, group.exp(combined, r))
            secret = group.random_scalar(rng)
            st_b = proofs.dlog_statement(group, group.exp(group.g, secret))
            context = b"or-%d" % i
            index = i % 2
            witness = r if index == 0 else secret
            proof = proofs.prove_dleq_or(
                group, (st_a, st_b), index, witness, context, rng
            )
            items.append(((st_a, st_b), proof, context))
        return items

    def test_valid_dleq_batch_accepts(self, group, rng):
        items = self._dleq_items(group, rng, 6)
        assert proofs.batch_verify_dleq(group, items, rng=rng)
        assert proofs.find_invalid_dleq(group, items, rng=rng) == ()

    def test_empty_batches_accept(self, group, rng):
        assert proofs.batch_verify_dleq(group, [], rng=rng)
        assert proofs.batch_verify_dleq_or(group, [], rng=rng)
        assert proofs.find_invalid_dleq(group, [], rng=rng) == ()
        assert proofs.find_invalid_dleq_or(group, [], rng=rng) == ()

    def test_single_bad_dleq_caught_and_isolated(self, group, rng):
        items = self._dleq_items(group, rng, 5)
        u, h, v, proof, context = items[2]
        items[2] = (u, h, group.mul(v, group.g), proof, context)
        assert not proofs.batch_verify_dleq(group, items, rng=rng)
        assert proofs.find_invalid_dleq(group, items, rng=rng) == (2,)

    def test_culprit_set_matches_per_proof_dleq(self, group, rng):
        items = self._dleq_items(group, rng, 9)
        for bad in (0, 4, 8):
            u, h, v, proof, context = items[bad]
            items[bad] = (
                u, h, v,
                proofs.DleqProof(proof.t1, proof.t2, (proof.s + 1) % group.q),
                context,
            )
        per_proof = tuple(
            i
            for i, (u, h, v, proof, context) in enumerate(items)
            if not proofs.verify_dleq(group, u, h, v, proof, context)
        )
        assert per_proof == (0, 4, 8)
        assert proofs.find_invalid_dleq(group, items, rng=rng) == per_proof

    def test_valid_or_batch_accepts(self, group, rng):
        items = self._or_items(group, rng, 6)
        assert proofs.batch_verify_dleq_or(group, items, rng=rng)
        assert proofs.find_invalid_dleq_or(group, items, rng=rng) == ()

    def test_culprit_set_matches_per_proof_or(self, group, rng):
        items = self._or_items(group, rng, 8)
        for bad in (1, 6):
            statements, proof, context = items[bad]
            broken = proofs.DleqOrProof(
                proof.t11, proof.t12, proof.t21, proof.t22,
                (proof.c1 + 1) % group.q, proof.s1, proof.s2,
            )
            items[bad] = (statements, broken, context)
        per_proof = tuple(
            i
            for i, (statements, proof, context) in enumerate(items)
            if not proofs.verify_dleq_or(group, statements, proof, context)
        )
        assert per_proof == (1, 6)
        assert proofs.find_invalid_dleq_or(group, items, rng=rng) == per_proof

    def test_all_bad_batch_names_everyone(self, group, rng):
        items = self._dleq_items(group, rng, 4)
        items = [
            (u, h, group.mul(v, group.g), proof, context)
            for (u, h, v, proof, context) in items
        ]
        assert proofs.find_invalid_dleq(group, items, rng=rng) == (0, 1, 2, 3)

    def test_structural_failure_rejects_batch(self, group, rng):
        items = self._dleq_items(group, rng, 3)
        u, h, v, proof, context = items[1]
        bad = proofs.DleqProof(proof.t1, proof.t2, proof.s + group.q)
        items[1] = (u, h, v, bad, context)
        assert not proofs.batch_verify_dleq(group, items, rng=rng)
        assert proofs.find_invalid_dleq(group, items, rng=rng) == (1,)

    def test_hot_bases_do_not_change_verdicts(self, group, rng):
        h = group.random_element(rng)
        items = []
        for i in range(4):
            x = group.random_scalar(rng)
            proof = proofs.prove_dleq(group, x, h, b"hot")
            items.append((group.exp(group.g, x), h, group.exp(h, x), proof, b"hot"))
        assert proofs.batch_verify_dleq(group, items, hot_bases=(h,), rng=rng)

    def test_tiny_group_coefficients_stay_in_range(self, tiny, rng):
        """Coefficient width clamps below q for toy groups."""
        items = []
        for i in range(3):
            x = tiny.random_scalar(rng)
            h = tiny.random_element(rng)
            proof = proofs.prove_dleq(tiny, x, h, b"t")
            items.append((tiny.exp(tiny.g, x), h, tiny.exp(h, x), proof, b"t"))
        assert proofs.batch_verify_dleq(tiny, items, rng=rng)
