"""Byzantine control plane: rotation, certificates, view change, expulsion.

The consensus layer must be invisible when nobody misbehaves — every
no-fault run stays bit-identical to the engines without it — and must
keep the session live and attributable under all three leader failure
modes: crash/stall (view timer rotates leadership), equivocation
(transferable proof convicts and expels), and vote withholding (majority
certificate whose absent signature names the withholder).
"""

import dataclasses
import json
import random
from types import SimpleNamespace

import pytest

from repro.consensus import (
    EquivocationProof,
    LeaderSchedule,
    RoundCertificate,
    leader_index,
    output_body_digest,
    quorum_size,
    rotation_base,
)
from repro.core.adversary import (
    EquivocatingLeader,
    StallingLeader,
    VoteWithholdingServer,
)
from repro.core.config import Policy
from repro.core.session import build_keys
from repro.errors import ConfigError, InvalidProof, InvalidSignature, ProtocolError
from repro.net.runner import NetworkedSession
from repro.persist import read_audit_log
from repro.persist.codec import (
    decode_certificate,
    decode_equivocation_proof,
    encode_certificate,
    encode_equivocation_proof,
)
from tests.test_networked_session import build_matched_inprocess

SEED = 2012
N_SERVERS = 3
N_CLIENTS = 4
ROUNDS = 3

# Small retry budget => the node view timer (min(retry budget,
# barrier_timeout)) fires in ~0.3 s, so faulted runs recover quickly.
# The coordinator barrier stays generous (timeout=30) — it must outlast
# the view change, never race it.
FAST_VIEWS = dict(
    reconnect_attempts=2, reconnect_base_delay=0.1, reconnect_max_delay=0.2
)


def fast_policy(**kwargs):
    return Policy(**FAST_VIEWS, **kwargs)


def networked(**kwargs):
    kwargs.setdefault("num_servers", N_SERVERS)
    kwargs.setdefault("num_clients", N_CLIENTS)
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("mode", "loopback")
    kwargs.setdefault("policy", fast_policy())
    kwargs.setdefault("timeout", 30.0)
    return NetworkedSession.build(**kwargs)


def drive(session, rounds=ROUNDS):
    session.setup()
    for i in range(N_CLIENTS):
        session.post(i, f"certified payload {i}".encode())
    records = session.run_rounds(rounds)
    return records, session.delivered_messages(0)


def round0_leader(definition, excluded=()):
    return leader_index(
        definition.group_id(), len(excluded), 0, 0, definition.num_servers, excluded
    )


@pytest.fixture(scope="module")
def baseline():
    """No-fault loopback run every fault scenario must reproduce exactly."""
    with networked() as session:
        records, delivered = drive(session)
        return SimpleNamespace(
            records=records, delivered=delivered, definition=session.definition
        )


@pytest.fixture(scope="module")
def equivocation_run(baseline, tmp_path_factory):
    """One shared faulted run: equivocating round-0 leader, audit + checkpoint."""
    tmp = tmp_path_factory.mktemp("equivocation")
    audit = tmp / "audit.ndjson"
    leader = round0_leader(baseline.definition)
    with networked(
        server_factories={leader: (EquivocatingLeader, {})},
        audit_path=str(audit),
    ) as session:
        records, delivered = drive(session)
        checkpoint = tmp / "session.ckpt"
        session.checkpoint(checkpoint)
        return SimpleNamespace(
            records=records,
            delivered=delivered,
            convicted=sorted(session.convicted_servers),
            proofs=list(session.equivocation_proofs),
            metrics=session.metrics(),
            definition=session.definition,
            leader=leader,
            audit=audit,
            checkpoint=checkpoint,
        )


class TestRotation:
    GID = b"\x13" * 32

    def test_deterministic_and_view_advances_like_round(self):
        assert rotation_base(self.GID, 0) == rotation_base(self.GID, 0)
        assert rotation_base(self.GID, 0) != rotation_base(self.GID, 1)
        for r in range(5):
            for v in range(3):
                once = leader_index(self.GID, 0, r, v, 5)
                again = leader_index(self.GID, 0, r, v, 5)
                assert once == again
                # One slot per round, one more per view: a timed-out
                # leader is never retried within the round.
                assert leader_index(self.GID, 0, r, v + 1, 5) == leader_index(
                    self.GID, 0, r + 1, v, 5
                )

    def test_walks_entire_roster(self):
        leaders = {leader_index(self.GID, 0, r, 0, 5) for r in range(5)}
        assert leaders == set(range(5))

    def test_excluded_never_lead(self):
        excluded = {1, 3}
        for r in range(10):
            assert leader_index(self.GID, 2, r, 0, 5, excluded) not in excluded
        with pytest.raises(ProtocolError):
            leader_index(self.GID, 3, 0, 0, 3, {0, 1, 2})

    def test_schedule_wrapper_matches_free_function(self):
        schedule = LeaderSchedule(group_id=self.GID, num_servers=4)
        assert schedule.epoch == 0
        assert schedule.leader(7, view=2) == leader_index(self.GID, 0, 7, 2, 4)
        bumped = schedule.excluding(2)
        assert bumped.epoch == 1
        assert bumped.leader(0) == leader_index(self.GID, 1, 0, 0, 4, {2})


class TestInProcessConsensus:
    def test_honest_rounds_carry_full_view0_certificates(self):
        session = build_matched_inprocess(num_clients=N_CLIENTS, seed=SEED)
        session.setup()
        session.post(0, b"certify me")
        record = session.run_round()
        cert = record.certificate
        assert cert is not None
        assert cert.view == 0
        assert cert.is_full(N_SERVERS)
        assert cert.voters == tuple(range(N_SERVERS))
        cert.verify(session.definition)
        assert cert.digest == output_body_digest(
            session.definition.group, record.output
        )
        # Certificates are audit metadata: record equality is unaffected,
        # so fault-run records can be compared against no-fault baselines.
        assert dataclasses.replace(record, certificate=None) == record

    def test_equivocating_leader_convicted_and_rotated_out(self):
        probe = build_matched_inprocess(num_clients=N_CLIENTS, seed=SEED)
        leader = round0_leader(probe.definition)
        session = build_matched_inprocess(
            num_clients=N_CLIENTS,
            seed=SEED,
            server_factories={leader: (EquivocatingLeader, {})},
        )
        session.setup()
        session.post(0, b"outlive the traitor")
        records = session.run_rounds(2)
        assert sorted(session.convicted_servers) == [leader]
        assert records[0].certificate.view == 1
        assert records[0].certificate.leader != leader
        # Epoch unchanged mid-session: round 1 re-runs the rotation with
        # the equivocator excluded.
        assert records[1].certificate.leader != leader
        [proof] = session.equivocation_proofs
        proof.verify(session.definition)
        assert proof.leader == leader

    def test_stalling_leader_handled_by_view_change(self):
        probe = build_matched_inprocess(num_clients=N_CLIENTS, seed=SEED)
        leader = round0_leader(probe.definition)
        session = build_matched_inprocess(
            num_clients=N_CLIENTS,
            seed=SEED,
            server_factories={leader: (StallingLeader, {})},
        )
        session.setup()
        record = session.run_round()
        assert record.certificate.view == 1
        assert record.certificate.leader != leader
        assert session.convicted_servers == set()

    def test_vote_withholder_yields_partial_quorum_certificate(self):
        withholder = 1
        session = build_matched_inprocess(
            num_clients=N_CLIENTS,
            seed=SEED,
            server_factories={withholder: (VoteWithholdingServer, {})},
        )
        session.setup()
        record = session.run_round()
        cert = record.certificate
        assert not cert.is_full(N_SERVERS)
        assert len(cert.votes) == quorum_size(N_SERVERS)
        # The missing signature names the withholder.
        assert withholder not in cert.voters
        cert.verify(session.definition)


class TestCertificateCodec:
    @pytest.fixture(scope="class")
    def certified(self):
        session = build_matched_inprocess(num_clients=N_CLIENTS, seed=SEED)
        session.setup()
        record = session.run_round()
        return session.definition, record.certificate

    def test_wire_round_trip(self, certified):
        definition, cert = certified
        group = definition.group
        clone = RoundCertificate.from_wire(group, cert.to_wire(group))
        assert clone.to_wire(group) == cert.to_wire(group)
        assert (clone.round_number, clone.view, clone.leader, clone.digest) == (
            cert.round_number,
            cert.view,
            cert.leader,
            cert.digest,
        )
        clone.verify(definition)

    def test_checkpoint_codec_round_trip(self, certified):
        definition, cert = certified
        group = definition.group
        encoded = encode_certificate(group, cert)
        assert isinstance(encoded, str)
        decoded = decode_certificate(group, encoded)
        assert decoded.to_wire(group) == cert.to_wire(group)
        assert encode_certificate(group, None) is None
        assert decode_certificate(group, None) is None

    def test_tampering_is_rejected(self, certified):
        definition, cert = certified
        with pytest.raises(InvalidSignature):
            dataclasses.replace(cert, digest=b"\x00" * 32).verify(definition)
        with pytest.raises(InvalidSignature):
            dataclasses.replace(cert, round_number=cert.round_number + 1).verify(
                definition
            )
        with pytest.raises(InvalidProof):
            dataclasses.replace(cert, votes=cert.votes[:1]).verify(definition)
        with pytest.raises(InvalidProof):
            dataclasses.replace(cert, votes=tuple(reversed(cert.votes))).verify(
                definition
            )
        with pytest.raises(InvalidProof):
            RoundCertificate.from_wire(definition.group, b"garbage")


class TestEquivocationProof:
    @pytest.fixture(scope="class")
    def convicted(self):
        probe = build_matched_inprocess(num_clients=N_CLIENTS, seed=SEED)
        leader = round0_leader(probe.definition)
        session = build_matched_inprocess(
            num_clients=N_CLIENTS,
            seed=SEED,
            server_factories={leader: (EquivocatingLeader, {})},
        )
        session.setup()
        session.run_round()
        [proof] = session.equivocation_proofs
        return session.definition, proof

    def test_transferable_to_a_party_that_never_ran_the_session(self, convicted):
        _, proof = convicted
        # Same group, fresh objects: verification needs only public data.
        bystander = build_matched_inprocess(num_clients=N_CLIENTS, seed=SEED)
        proof.verify(bystander.definition)

    def test_checkpoint_codec_round_trip(self, convicted):
        definition, proof = convicted
        group = definition.group
        decoded = decode_equivocation_proof(
            group, encode_equivocation_proof(group, proof)
        )
        decoded.verify(definition)
        assert decoded.to_wire(group) == proof.to_wire(group)

    def test_agreeing_proposals_prove_nothing(self, convicted):
        definition, proof = convicted
        with pytest.raises(InvalidProof):
            dataclasses.replace(proof, second=proof.first).verify(definition)

    def test_wrong_leader_rejected(self, convicted):
        definition, proof = convicted
        other = (proof.leader + 1) % definition.num_servers
        with pytest.raises(InvalidProof):
            dataclasses.replace(proof, leader=other).verify(definition)


class TestNetworkedFaults:
    def test_no_fault_run_certifies_every_round_at_view0(self, baseline):
        for record in baseline.records:
            cert = record.certificate
            assert cert.view == 0
            assert cert.is_full(N_SERVERS)
            cert.verify(baseline.definition)
            assert cert.digest == output_body_digest(
                baseline.definition.group, record.output
            )

    def test_equivocating_leader_expelled_outputs_unchanged(
        self, baseline, equivocation_run
    ):
        run = equivocation_run
        # Acceptance: the faulted session completes every round and its
        # records and cleartexts match the unfaulted baseline exactly.
        assert run.records == baseline.records
        assert run.delivered == baseline.delivered
        assert run.convicted == [run.leader]
        assert run.records[0].certificate.view == 1
        for record in run.records:
            assert record.certificate.leader != run.leader
            record.certificate.verify(run.definition)
        [proof] = run.proofs
        proof.verify(run.definition)
        assert proof.leader == run.leader
        counters = run.metrics["counters"]
        # Every server formed a cert per round; every server rotated past
        # the equivocator exactly once; one conviction committed.
        assert counters["consensus.certs_formed"] == N_SERVERS * ROUNDS
        assert counters["consensus.views_changed"] >= N_SERVERS
        assert counters["session.servers_convicted"] == 1
        assert counters["session.view_changes_committed"] == 1

    def test_equivocation_lands_in_audit_log(self, equivocation_run):
        entries = read_audit_log(equivocation_run.audit)
        events = [entry["event"] for entry in entries]
        assert "equivocation" in events
        assert "view_change" in events
        [conviction] = [e for e in entries if e["event"] == "equivocation"]
        assert conviction["data"]["leader"] == equivocation_run.leader

    def test_checkpoint_preserves_certificates_and_proofs(
        self, baseline, equivocation_run
    ):
        run = equivocation_run
        with NetworkedSession.restore(
            run.checkpoint, audit_path=str(run.audit)
        ) as restored:
            group = restored.definition.group
            assert len(restored.records) == len(run.records)
            for before, after in zip(run.records, restored.records):
                assert after.certificate.to_wire(group) == before.certificate.to_wire(
                    group
                )
                after.certificate.verify(restored.definition)
            assert sorted(restored.convicted_servers) == run.convicted
            [proof] = restored.equivocation_proofs
            proof.verify(restored.definition)
            assert proof.to_wire(group) == run.proofs[0].to_wire(group)
            # The expelled leader stays out of the rotation after restore.
            record = restored.run_round()
            assert record.certificate.leader != run.leader
            record.certificate.verify(restored.definition)
        # Satellite: the audit chain stays verifiable over the reopen —
        # expulsion evidence and post-restore events hash-chain together.
        events = [entry["event"] for entry in read_audit_log(run.audit)]
        assert "equivocation" in events
        assert "resume" in events

    def test_stalling_leader_recovered_by_view_change(self, baseline):
        leader = round0_leader(baseline.definition)
        with networked(
            server_factories={leader: (StallingLeader, {})}
        ) as session:
            records, delivered = drive(session)
            convicted = sorted(session.convicted_servers)
        assert records == baseline.records
        assert delivered == baseline.delivered
        assert convicted == []  # stalling is a liveness fault, not a crime
        assert records[0].certificate.view >= 1
        assert records[0].certificate.leader != leader

    def test_vote_withholder_cannot_halt_the_session(self, baseline):
        withholder = 1
        with networked(
            server_factories={withholder: (VoteWithholdingServer, {})}
        ) as session:
            records, delivered = drive(session)
        assert records == baseline.records
        assert delivered == baseline.delivered
        for record in records:
            cert = record.certificate
            assert len(cert.votes) == quorum_size(N_SERVERS)
            assert withholder not in cert.voters
            cert.verify(baseline.definition)


class TestCrossModeParity:
    @pytest.mark.parametrize("mode", ["loopback", "tcp"])
    def test_no_fault_certificates_match_inprocess(self, mode):
        # group_name=None on both sides: the DISSENT_GROUP_BACKEND matrix
        # must steer the in-process and networked builds identically.
        inproc = build_matched_inprocess(
            group_name=None, num_clients=N_CLIENTS, seed=SEED
        )
        inproc.setup()
        inproc.post(0, b"parity across transports")
        expected = [inproc.run_round() for _ in range(2)]
        group = inproc.definition.group
        with NetworkedSession.build(
            num_servers=N_SERVERS, num_clients=N_CLIENTS, seed=SEED, mode=mode
        ) as session:
            session.setup()
            session.post(0, b"parity across transports")
            actual = [session.run_round() for _ in range(2)]
        assert actual == expected
        for mine, theirs in zip(actual, expected):
            assert mine.certificate.to_wire(group) == theirs.certificate.to_wire(
                group
            )
            assert mine.certificate.view == 0
            assert mine.certificate.is_full(N_SERVERS)

    def test_tcp_equivocating_leader_convicted(self, baseline):
        leader = round0_leader(baseline.definition)
        with networked(
            mode="tcp", server_factories={leader: (EquivocatingLeader, {})}
        ) as session:
            records, _ = drive(session, rounds=2)
            convicted = sorted(session.convicted_servers)
            proofs = list(session.equivocation_proofs)
        assert records == baseline.records[:2]
        assert convicted == [leader]
        assert records[0].certificate.view == 1
        [proof] = proofs
        proof.verify(baseline.definition)

    def test_subprocess_stalling_leader_recovered(self, baseline):
        leader = round0_leader(baseline.definition)
        with networked(
            mode="subprocess", server_factories={leader: (StallingLeader, {})}
        ) as session:
            records, _ = drive(session, rounds=2)
            convicted = sorted(session.convicted_servers)
        assert records == baseline.records[:2]
        assert convicted == []
        assert records[0].certificate.view >= 1


class TestBarrierTimeoutKnob:
    def test_validation(self):
        with pytest.raises(ConfigError):
            Policy(barrier_timeout=0)
        with pytest.raises(ConfigError):
            Policy(barrier_timeout=-1.0)

    def test_serialization_round_trip(self):
        policy = Policy(barrier_timeout=42.5)
        data = policy.to_dict()
        assert data["barrier_timeout"] == 42.5
        assert Policy.from_dict(data) == policy

    def test_session_timeout_defaults_to_policy_knob(self):
        with networked(policy=fast_policy(barrier_timeout=9.0), timeout=None) as s:
            assert s.timeout == 9.0
        with networked(policy=fast_policy(barrier_timeout=9.0), timeout=3.0) as s:
            assert s.timeout == 3.0


class TestAuditReport:
    def test_unknown_event_kinds_are_listed_not_skipped(self):
        from repro.obs.report import audit_table

        rendered = audit_table(
            [
                {"event": "mystery", "data": {}},
                {"event": "view_change", "data": {"round": 0, "views": 1}},
            ]
        )
        assert "mystery" in rendered
        assert "view_change" in rendered

    def test_report_surfaces_consensus_events(
        self, equivocation_run, tmp_path, capsys
    ):
        from repro.obs.report import main

        snapshot = tmp_path / "metrics.json"
        snapshot.write_text(json.dumps(equivocation_run.metrics))
        assert (
            main([str(snapshot), "--full", "--audit", str(equivocation_run.audit)])
            == 0
        )
        out = capsys.readouterr().out
        assert "audit log (hash chain verified)" in out
        assert "view_change" in out
        assert "equivocation" in out

    def test_usage_error(self, capsys):
        from repro.obs.report import main

        assert main([]) == 2
        assert main(["snap.json", "--audit"]) == 2
