"""Unit tests for signatures, key pairs, DH, and ElGamal."""

import pytest

from repro.crypto import dh, elgamal, schnorr
from repro.crypto.keys import PrivateKey, PublicKey
from repro.errors import CryptoError, InvalidCiphertext, InvalidSignature


class TestKeys:
    def test_public_matches_private(self, group, rng):
        key = PrivateKey.generate(group, rng)
        assert key.public.y == group.exp(group.g, key.x)

    def test_scalar_out_of_range_rejected(self, group):
        with pytest.raises(ValueError):
            PrivateKey(group, 0)
        with pytest.raises(ValueError):
            PrivateKey(group, group.q)

    def test_public_key_validates_element(self, group):
        with pytest.raises(CryptoError):
            PublicKey(group, group.p - 1)

    def test_public_key_bytes_roundtrip(self, keypair, group):
        data = keypair.public.to_bytes()
        assert PublicKey.from_bytes(group, data).y == keypair.y

    def test_fingerprint_stable_and_short(self, keypair):
        assert keypair.public.fingerprint() == keypair.public.fingerprint()
        assert len(keypair.public.fingerprint()) == 8


class TestSchnorrSignatures:
    def test_sign_verify(self, keypair):
        sig = schnorr.sign(keypair, b"message")
        assert schnorr.verify(keypair.public, b"message", sig)

    def test_wrong_message_fails(self, keypair):
        sig = schnorr.sign(keypair, b"message")
        assert not schnorr.verify(keypair.public, b"messagX", sig)

    def test_wrong_key_fails(self, group, keypair, rng):
        other = PrivateKey.generate(group, rng)
        sig = schnorr.sign(keypair, b"m")
        assert not schnorr.verify(other.public, b"m", sig)

    def test_signatures_deterministic(self, keypair):
        # RFC 6979-style nonces: same key + message => same signature.
        assert schnorr.sign(keypair, b"m") == schnorr.sign(keypair, b"m")

    def test_nonce_commitment_never_repeats_across_messages(self, keypair):
        # The footgun deterministic nonces prevent: a repeated t with two
        # distinct challenges leaks the private key.  Distinct messages
        # must always get distinct commitments.
        commitments = [
            schnorr.sign(keypair, b"message-%d" % i).t for i in range(64)
        ]
        assert len(set(commitments)) == len(commitments)

    def test_distinct_keys_distinct_nonces(self, group, keypair, rng):
        other = PrivateKey.generate(group, rng)
        assert schnorr.sign(keypair, b"m").t != schnorr.sign(other, b"m").t

    def test_out_of_range_components_fail(self, group, keypair):
        sig = schnorr.sign(keypair, b"m")
        bad = schnorr.Signature(sig.t, group.q)
        assert not schnorr.verify(keypair.public, b"m", bad)

    def test_non_element_commitment_fails(self, group, keypair):
        sig = schnorr.sign(keypair, b"m")
        bad = schnorr.Signature(group.p - 1, sig.s)  # QNR: not in subgroup
        assert not schnorr.verify(keypair.public, b"m", bad)

    def test_bytes_roundtrip(self, group, keypair):
        sig = schnorr.sign(keypair, b"m")
        data = sig.to_bytes(group)
        assert schnorr.Signature.from_bytes(group, data) == sig

    def test_bytes_wrong_width(self, group):
        with pytest.raises(InvalidSignature):
            schnorr.Signature.from_bytes(group, b"\x00" * 3)

    def test_require_valid_raises(self, keypair):
        sig = schnorr.sign(keypair, b"m")
        with pytest.raises(InvalidSignature):
            schnorr.require_valid(keypair.public, b"other", sig)

    def test_empty_message(self, keypair):
        sig = schnorr.sign(keypair, b"")
        assert schnorr.verify(keypair.public, b"", sig)


class TestSchnorrBatchVerify:
    def _items(self, group, rng, count):
        keys = [PrivateKey.generate(group, rng) for _ in range(count)]
        return [
            (key.public, b"msg-%d" % i, schnorr.sign(key, b"msg-%d" % i))
            for i, key in enumerate(keys)
        ]

    def test_all_valid_accepts(self, group, rng):
        assert schnorr.batch_verify(self._items(group, rng, 8))

    def test_empty_batch_accepts(self):
        assert schnorr.batch_verify([])
        assert schnorr.find_invalid([]) == ()

    def test_single_item_degrades_to_scalar(self, group, rng):
        items = self._items(group, rng, 1)
        assert schnorr.batch_verify(items)
        key, message, sig = items[0]
        bad = [(key, b"other", sig)]
        assert not schnorr.batch_verify(bad)
        assert schnorr.find_invalid(bad) == (0,)

    def test_forged_signature_rejected_and_isolated(self, group, rng):
        items = self._items(group, rng, 16)
        key, _, sig = items[5]
        items[5] = (key, b"forged message", sig)
        assert not schnorr.batch_verify(items)
        assert schnorr.find_invalid(items, known_failed=True) == (5,)

    def test_multiple_culprits_all_named(self, group, rng):
        items = self._items(group, rng, 12)
        for i in (2, 9):
            key, _, sig = items[i]
            items[i] = (key, b"tampered", sig)
        assert schnorr.find_invalid(items) == (2, 9)

    def test_verdicts_match_scalar_path(self, group, rng):
        items = self._items(group, rng, 10)
        key, _, sig = items[3]
        items[3] = (key, b"evil", sig)
        scalar = tuple(
            i for i, item in enumerate(items) if not schnorr.verify(*item)
        )
        assert schnorr.find_invalid(items) == scalar

    def test_hot_bases_do_not_change_verdicts(self, group, rng):
        items = self._items(group, rng, 6)
        hot = [key.y for key, _, _ in items]
        assert schnorr.batch_verify(items, hot_bases=hot)
        key, _, sig = items[0]
        items[0] = (key, b"x", sig)
        assert not schnorr.batch_verify(items, hot_bases=hot)
        assert schnorr.find_invalid(items, hot_bases=hot) == (0,)


class TestDiffieHellman:
    def test_symmetry(self, group, rng):
        a, b = PrivateKey.generate(group, rng), PrivateKey.generate(group, rng)
        assert dh.shared_secret(a, b.public) == dh.shared_secret(b, a.public)

    def test_distinct_pairs_distinct_secrets(self, group, rng):
        a, b, c = (PrivateKey.generate(group, rng) for _ in range(3))
        assert dh.shared_secret(a, b.public) != dh.shared_secret(a, c.public)

    def test_secret_width(self, group, rng):
        a, b = PrivateKey.generate(group, rng), PrivateKey.generate(group, rng)
        assert len(dh.shared_secret(a, b.public)) == 32

    def test_element_matches_secret(self, group, rng):
        a, b = PrivateKey.generate(group, rng), PrivateKey.generate(group, rng)
        element = dh.shared_element(a, b.public)
        assert dh.secret_from_element(group, element) == dh.shared_secret(a, b.public)

    def test_cross_group_rejected(self, group, tiny, rng):
        a = PrivateKey.generate(group, rng)
        b = PrivateKey.generate(tiny, rng)
        with pytest.raises(CryptoError):
            dh.shared_secret(a, b.public)

    def test_bad_element_rejected(self, group):
        with pytest.raises(CryptoError):
            dh.secret_from_element(group, group.p - 1)


class TestElGamal:
    def test_encrypt_decrypt(self, group, keypair, rng):
        m = group.random_element(rng)
        assert elgamal.decrypt(keypair, elgamal.encrypt(keypair.public, m)) == m

    def test_randomized(self, group, keypair, rng):
        m = group.random_element(rng)
        assert elgamal.encrypt(keypair.public, m) != elgamal.encrypt(keypair.public, m)

    def test_explicit_randomness_deterministic(self, group, keypair, rng):
        m = group.random_element(rng)
        r = group.random_scalar(rng)
        assert elgamal.encrypt(keypair.public, m, r) == elgamal.encrypt(keypair.public, m, r)

    def test_non_element_plaintext_rejected(self, group, keypair):
        with pytest.raises(CryptoError):
            elgamal.encrypt(keypair.public, group.p - 1)

    def test_ciphertext_bytes_roundtrip(self, group, keypair, rng):
        ct = elgamal.encrypt(keypair.public, group.random_element(rng))
        assert elgamal.Ciphertext.from_bytes(group, ct.to_bytes(group)) == ct

    def test_ciphertext_bad_bytes(self, group):
        with pytest.raises(InvalidCiphertext):
            elgamal.Ciphertext.from_bytes(group, b"\x00")

    def test_layered_any_strip_order(self, group, rng):
        keys = [PrivateKey.generate(group, rng) for _ in range(4)]
        m = group.random_element(rng)
        ct = elgamal.encrypt_layered([k.public for k in keys], m)
        for key in reversed(keys):  # strip in reverse order: still works
            ct = elgamal.strip_layer(key, ct)
        assert elgamal.final_plaintext(group, ct) == m

    def test_combined_key_is_product(self, group, rng):
        keys = [PrivateKey.generate(group, rng) for _ in range(3)]
        combined = elgamal.combined_key([k.public for k in keys])
        expected = 1
        for k in keys:
            expected = group.mul(expected, k.y)
        assert combined.y == expected

    def test_combined_key_empty_rejected(self):
        with pytest.raises(InvalidCiphertext):
            elgamal.combined_key([])

    def test_rerandomize_preserves_plaintext(self, group, keypair, rng):
        m = group.random_element(rng)
        ct = elgamal.encrypt(keypair.public, m)
        ct2, r = elgamal.rerandomize(keypair.public, ct)
        assert ct2 != ct
        assert elgamal.decrypt(keypair, ct2) == m

    def test_rerandomize_with_zero_layers_left(self, group, rng):
        # Rerandomizing under a combined key then stripping still decodes.
        keys = [PrivateKey.generate(group, rng) for _ in range(2)]
        publics = [k.public for k in keys]
        m = group.random_element(rng)
        ct = elgamal.encrypt_layered(publics, m)
        ct, _ = elgamal.rerandomize(elgamal.combined_key(publics), ct)
        for key in keys:
            ct = elgamal.strip_layer(key, ct)
        assert elgamal.final_plaintext(group, ct) == m
