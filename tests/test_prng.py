"""Unit tests for the keyed PRNG streams (the DC-net coins)."""

import hashlib

import pytest

from repro.crypto import prng
from repro.util.bytesops import get_bit


def _reference_pair_stream(secret: bytes, round_number: int, length: int) -> bytes:
    """The pre-cache derivation: absorb everything into a fresh XOF."""
    xof = hashlib.shake_256()
    xof.update(b"dissent.pair-stream.v1")
    xof.update(len(secret).to_bytes(4, "big"))
    xof.update(secret)
    xof.update(round_number.to_bytes(8, "big"))
    return xof.digest(length)


class TestPairStream:
    def test_deterministic(self):
        s = b"\x01" * 32
        assert prng.pair_stream(s, 3, 100) == prng.pair_stream(s, 3, 100)

    def test_round_separation(self):
        s = b"\x01" * 32
        assert prng.pair_stream(s, 1, 64) != prng.pair_stream(s, 2, 64)

    def test_secret_separation(self):
        assert prng.pair_stream(b"a" * 32, 0, 64) != prng.pair_stream(b"b" * 32, 0, 64)

    def test_prefix_property(self):
        # Stream of length n is a prefix of the stream of length n+k: this
        # is what makes single-bit recomputation during tracing valid.
        s = b"\x07" * 32
        long = prng.pair_stream(s, 5, 256)
        assert prng.pair_stream(s, 5, 64) == long[:64]

    def test_zero_length(self):
        assert prng.pair_stream(b"x" * 32, 0, 0) == b""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            prng.pair_stream(b"x" * 32, 0, -1)

    def test_roughly_balanced(self):
        stream = prng.pair_stream(b"balance" * 4, 9, 4096)
        ones = sum(bin(byte).count("1") for byte in stream)
        assert 0.45 < ones / (8 * 4096) < 0.55

    def test_cached_state_matches_fresh_absorption(self):
        # The pre-absorbed per-secret SHAKE state (copied per round) must
        # reproduce the original absorb-everything derivation exactly.
        secrets = [b"\x00" * 32, b"k" * 32, b"", b"short", b"x" * 131]
        for secret in secrets:
            for round_number in (0, 1, 7, 2**40):
                for length in (0, 1, 31, 257):
                    assert prng.pair_stream(
                        secret, round_number, length
                    ) == _reference_pair_stream(secret, round_number, length)

    def test_cache_eviction_keeps_streams_correct(self):
        # Blow through the LRU bound; evicted secrets must re-derive the
        # same bytes when they come back.
        probe = b"probe-secret" * 2
        before = prng.pair_stream(probe, 3, 64)
        for i in range(prng._PAIR_STATE_CACHE_MAX + 8):
            prng.pair_stream(b"filler-%d" % i, 0, 1)
        assert probe not in prng._pair_states
        assert prng.pair_stream(probe, 3, 64) == before

    def test_interleaved_rounds_do_not_corrupt_state(self):
        # copy() must leave the cached base state untouched.
        s = b"\x42" * 32
        a1 = prng.pair_stream(s, 1, 33)
        a2 = prng.pair_stream(s, 2, 33)
        assert prng.pair_stream(s, 1, 33) == a1
        assert prng.pair_stream(s, 2, 33) == a2


class TestPairStreamBit:
    def test_matches_full_stream(self):
        s = b"\x33" * 32
        stream = prng.pair_stream(s, 12, 32)
        for k in range(8 * 32):
            assert prng.pair_stream_bit(s, 12, k) == get_bit(stream, k)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            prng.pair_stream_bit(b"x" * 32, 0, -1)


class TestSeededStream:
    def test_deterministic(self):
        assert prng.seeded_stream(b"seed", 48) == prng.seeded_stream(b"seed", 48)

    def test_domain_separated_from_pair_stream(self):
        # Same bytes as key/seed must not produce the same stream.
        s = b"k" * 32
        assert prng.seeded_stream(s, 64) != prng.pair_stream(s, 0, 64)

    def test_length_exact(self):
        assert len(prng.seeded_stream(b"s", 17)) == 17


class TestCacheHygiene:
    def test_clear_pair_state_cache_drops_secrets(self):
        s = b"\x5a" * 32
        before = prng.pair_stream(s, 1, 32)
        assert s in prng._pair_states
        prng.clear_pair_state_cache()
        assert not prng._pair_states
        assert prng.pair_stream(s, 1, 32) == before  # re-derives identically


class TestPadPrefetcher:
    def test_byte_identical_to_pair_stream(self):
        fetcher = prng.PadPrefetcher(window=4)
        secrets = [bytes([i]) * 32 for i in range(3)]
        fetcher.prefetch(secrets, 0, 96)
        for r in range(6):  # rounds 4/5 never prefetched: miss path
            for s in secrets:
                assert fetcher.pair_stream(s, r, 96) == prng.pair_stream(s, r, 96)

    def test_longer_cached_pad_serves_shorter_request(self):
        fetcher = prng.PadPrefetcher()
        s = b"\x07" * 32
        fetcher.prefetch([s], 1, 256, rounds=1)
        assert fetcher.pair_stream(s, 1, 64) == prng.pair_stream(s, 1, 64)
        assert fetcher.hits == 1 and fetcher.misses == 0

    def test_shorter_cached_pad_rederives(self):
        fetcher = prng.PadPrefetcher()
        s = b"\x07" * 32
        fetcher.prefetch([s], 1, 16, rounds=1)
        assert fetcher.pair_stream(s, 1, 64) == prng.pair_stream(s, 1, 64)
        assert fetcher.misses == 1

    def test_hit_miss_and_prefetch_counters(self):
        fetcher = prng.PadPrefetcher(window=2)
        secrets = [b"\x01" * 32, b"\x02" * 32]
        assert fetcher.prefetch(secrets, 0, 32) == 4  # 2 secrets x 2 rounds
        assert fetcher.prefetch(secrets, 0, 32) == 0  # already cached
        fetcher.pair_stream(secrets[0], 0, 32)
        fetcher.pair_stream(secrets[0], 9, 32)
        assert (fetcher.hits, fetcher.misses, fetcher.prefetched) == (1, 1, 4)
        assert fetcher.hit_rate == 0.5

    def test_bounded_cache_evicts_lru(self):
        fetcher = prng.PadPrefetcher(window=1, max_entries=2)
        secrets = [bytes([i]) * 32 for i in range(3)]
        fetcher.prefetch(secrets, 0, 16)
        # Only two entries survive; the oldest secret was evicted but the
        # stream it serves is still byte-identical (re-derived).
        assert len(fetcher._pads) == 2
        assert fetcher.pair_stream(secrets[0], 0, 16) == prng.pair_stream(
            secrets[0], 0, 16
        )

    def test_discard_before_drops_completed_rounds(self):
        fetcher = prng.PadPrefetcher(window=4)
        fetcher.prefetch([b"\x05" * 32], 0, 16)
        fetcher.discard_before(2)
        assert sorted(r for _, r in fetcher._pads) == [2, 3]

    def test_clear_drops_everything(self):
        fetcher = prng.PadPrefetcher()
        fetcher.prefetch([b"\x05" * 32], 0, 16)
        fetcher.clear()
        assert len(fetcher._pads) == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            prng.PadPrefetcher(window=0)
        with pytest.raises(ValueError):
            prng.PadPrefetcher(max_entries=0)
