"""Unit tests for the keyed PRNG streams (the DC-net coins)."""

import pytest

from repro.crypto import prng
from repro.util.bytesops import get_bit


class TestPairStream:
    def test_deterministic(self):
        s = b"\x01" * 32
        assert prng.pair_stream(s, 3, 100) == prng.pair_stream(s, 3, 100)

    def test_round_separation(self):
        s = b"\x01" * 32
        assert prng.pair_stream(s, 1, 64) != prng.pair_stream(s, 2, 64)

    def test_secret_separation(self):
        assert prng.pair_stream(b"a" * 32, 0, 64) != prng.pair_stream(b"b" * 32, 0, 64)

    def test_prefix_property(self):
        # Stream of length n is a prefix of the stream of length n+k: this
        # is what makes single-bit recomputation during tracing valid.
        s = b"\x07" * 32
        long = prng.pair_stream(s, 5, 256)
        assert prng.pair_stream(s, 5, 64) == long[:64]

    def test_zero_length(self):
        assert prng.pair_stream(b"x" * 32, 0, 0) == b""

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            prng.pair_stream(b"x" * 32, 0, -1)

    def test_roughly_balanced(self):
        stream = prng.pair_stream(b"balance" * 4, 9, 4096)
        ones = sum(bin(byte).count("1") for byte in stream)
        assert 0.45 < ones / (8 * 4096) < 0.55


class TestPairStreamBit:
    def test_matches_full_stream(self):
        s = b"\x33" * 32
        stream = prng.pair_stream(s, 12, 32)
        for k in range(8 * 32):
            assert prng.pair_stream_bit(s, 12, k) == get_bit(stream, k)

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            prng.pair_stream_bit(b"x" * 32, 0, -1)


class TestSeededStream:
    def test_deterministic(self):
        assert prng.seeded_stream(b"seed", 48) == prng.seeded_stream(b"seed", 48)

    def test_domain_separated_from_pair_stream(self):
        # Same bytes as key/seed must not produce the same stream.
        s = b"k" * 32
        assert prng.seeded_stream(s, 64) != prng.pair_stream(s, 0, 64)

    def test_length_exact(self):
        assert len(prng.seeded_stream(b"s", 17)) == 17
