"""Shape tests for every reproduced figure (fast configurations)."""

import pytest

from repro.bench import ablations, fig6, fig7, fig8, fig9, fig10, fig11


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(num_rounds=600)

    def test_all_policies_present(self, result):
        assert set(result.series) == {"baseline", "1.1x", "1.2x", "2x"}

    def test_baseline_median_order_of_magnitude_slower(self, result):
        idx = result.x_values.index("50%")
        assert result.series["baseline"][idx] > 10 * result.series["1.1x"][idx]

    def test_early_policies_insensitive_to_multiplier(self, result):
        # Paper: "client submission time is not very sensitive to the
        # multiplicative constant used".
        idx = result.x_values.index("50%")
        assert result.series["2x"][idx] < 3 * result.series["1.1x"][idx]

    def test_miss_rates_within_paper_band(self):
        rates = fig6.miss_rates(num_rounds=600)
        assert 0.005 < rates["1.1x"] < 0.06
        assert rates["2x"] < rates["1.1x"]


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(rounds_per_point=3)

    def test_round_time_grows_with_clients(self, result):
        for name in ("1%-server(Det)", "128K-server(Det)"):
            assert result.series[name][-1] > result.series[name][0]

    def test_microblog_subsecond_at_small_scale(self, result):
        idx = result.x_values.index(32)
        total = result.series["1%-server(Det)"][idx] + result.series["1%-client(Det)"][idx]
        assert 0.3 < total < 1.0

    def test_microblog_exceeds_second_past_1000(self, result):
        # The paper's prototype verified envelope signatures one at a
        # time; under that cost model rounds exceed one second at 1000
        # clients.  Batched verification (the repo's default) shaves the
        # signature term, so the batched curve sits below the unbatched
        # one while still blowing past a second at 5120.
        from dataclasses import replace

        from repro.sim.costmodel import DEFAULT_COST_MODEL

        idx = result.x_values.index(1000)
        total = result.series["1%-server(Det)"][idx] + result.series["1%-client(Det)"][idx]
        paper = fig7.run(
            rounds_per_point=3,
            cost=replace(DEFAULT_COST_MODEL, batched_signatures=False),
        )
        paper_total = (
            paper.series["1%-server(Det)"][idx] + paper.series["1%-client(Det)"][idx]
        )
        assert paper_total > 1.0
        assert total < paper_total  # the batching win shows up in Fig 7
        last = result.x_values.index(5120)
        assert (
            result.series["1%-server(Det)"][last]
            + result.series["1%-client(Det)"][last]
            > 1.0
        )

    def test_bandwidth_dominates_128k(self, result):
        # 128K rounds are slower than microblog rounds at every scale.
        for i in range(len(result.x_values)):
            share = result.series["128K-server(Det)"][i]
            micro = result.series["1%-server(Det)"][i]
            assert share > micro

    def test_planetlab_slower_than_deterlab(self, result):
        # Compare where the paper's PlanetLab deployment actually ran
        # (up to 2,000 real nodes, no process multiplexing); at 5,120 the
        # DeterLab 16-processes-per-machine contention dominates instead.
        for i, n in enumerate(result.x_values):
            if n <= 1000:
                assert (
                    result.series["1%-client(PL)"][i]
                    > result.series["1%-client(Det)"][i]
                )


class TestFig8:
    @pytest.fixture(scope="class")
    def result(self):
        return fig8.run(rounds_per_point=3)

    def test_client_time_falls_with_servers(self, result):
        assert result.series["128K-client"][-1] < result.series["128K-client"][0]
        assert result.series["1%-client"][-1] < result.series["1%-client"][0]

    def test_server_time_rises_at_high_server_count(self, result):
        series = result.series["128K-server"]
        assert series[-1] > min(series)


class TestFig9:
    @pytest.fixture(scope="class")
    def result(self):
        return fig9.run()

    def test_blame_shuffle_over_hour_at_1000(self, result):
        idx = result.x_values.index(1000)
        assert result.series["blame-shuffle"][idx] > 3600

    def test_key_shuffle_cheaper_than_blame(self, result):
        for k, b in zip(result.series["key-shuffle"], result.series["blame-shuffle"]):
            assert k < b / 5

    def test_dcnet_round_negligible(self, result):
        for d, k in zip(result.series["dcnet-round"], result.series["key-shuffle"]):
            assert d < k / 10

    def test_all_stages_grow(self, result):
        for name, series in result.series.items():
            assert series[-1] > series[0], name


class TestFig10And11:
    def test_fig10_paper_magnitudes(self):
        result = fig10.run()
        spm = {name: series[3] for name, series in result.series.items()}
        assert spm["direct"] < spm["tor"] < spm["dissent"] < spm["dissent+tor"]
        assert spm["dissent+tor"] / spm["tor"] < 2.0

    def test_fig11_median_gap(self):
        result = fig11.run()
        idx = result.x_values.index("50%")
        tor = result.series["tor"][idx]
        both = result.series["dissent+tor"][idx]
        assert 0 < both - tor < 10


class TestAblations:
    def test_secret_graph(self):
        result = ablations.secret_graph_ablation()
        assert len(set(result.series["anytrust"])) == 1
        assert result.series["all-pairs"][-1] > result.series["all-pairs"][0]

    def test_topology(self):
        result = ablations.topology_ablation()
        assert result.series["broadcast(N^2)"][-1] > 1000 * result.series["dissent(N+M^2)"][-1]

    def test_churn_restarts(self):
        result = ablations.churn_restart_ablation()
        attempts = dict(zip(result.x_values, result.series["attempts"]))
        assert attempts["all-pairs"] == 4.0
        assert attempts["dissent"] == 1.0


class TestHarness:
    def test_table_renders(self):
        from repro.bench.harness import FigureResult

        result = FigureResult("F", "title", "x", [1, 2])
        result.add_series("a", [1.0, 2.0])
        text = result.table()
        assert "F: title" in text and "a" in text

    def test_series_length_mismatch_rejected(self):
        from repro.bench.harness import FigureResult

        result = FigureResult("F", "t", "x", [1, 2, 3])
        with pytest.raises(ValueError):
            result.add_series("bad", [1.0])

    def test_fmt_seconds(self):
        from repro.bench.harness import fmt_seconds

        assert fmt_seconds(0.5e-4) == "50us"
        assert fmt_seconds(0.5) == "500ms"
        assert fmt_seconds(5) == "5.00s"
        assert fmt_seconds(600) == "10.0min"
        assert fmt_seconds(7300) == "2.03h"
