"""Integration tests: the full real-crypto protocol end to end."""

import pytest

from tests.helpers import fresh_session
from repro.core import DissentSession, Policy, RoundStatus
from repro.errors import ProtocolError


class TestSetup:
    def test_every_client_gets_unique_slot(self, small_session):
        slots = [c.slot for c in small_session.clients]
        assert sorted(slots) == list(range(6))

    def test_servers_and_clients_agree_on_schedule(self, small_session):
        keys = {tuple(s.slot_keys) for s in small_session.servers}
        keys |= {tuple(c.slot_keys) for c in small_session.clients}
        assert len(keys) == 1

    def test_double_setup_rejected(self, small_session):
        with pytest.raises(ProtocolError):
            small_session.setup()

    def test_rounds_before_setup_rejected(self):
        session = DissentSession.build(num_servers=2, num_clients=3, seed=1)
        with pytest.raises(ProtocolError):
            session.run_round()


class TestMessaging:
    def test_single_message_delivered_to_all(self):
        session = fresh_session(seed=42)
        session.post(2, b"anonymous hello")
        session.run_until_quiet()
        for client in session.clients:
            assert b"anonymous hello" in [m for (_, _, m) in client.received]

    def test_message_attributed_to_slot_not_client(self):
        session = fresh_session(seed=43)
        session.post(2, b"whoami")
        session.run_until_quiet()
        deliveries = [
            (slot, m) for (_, slot, m) in session.clients[0].received if m == b"whoami"
        ]
        assert len(deliveries) == 1
        assert deliveries[0][0] == session.clients[2].slot

    def test_concurrent_senders(self):
        session = fresh_session(seed=44)
        for i in range(5):
            session.post(i, f"msg-{i}".encode())
        session.run_until_quiet()
        got = {m for (_, _, m) in session.clients[3].received}
        assert got == {f"msg-{i}".encode() for i in range(5)}

    def test_multiple_messages_one_sender_in_order(self):
        session = fresh_session(seed=45)
        session.post(1, b"first")
        session.post(1, b"second")
        session.post(1, b"third")
        session.run_until_quiet()
        ours = [
            m
            for (_, slot, m) in session.clients[0].received
            if slot == session.clients[1].slot
        ]
        assert ours == [b"first", b"second", b"third"]

    def test_large_message_grows_slot(self):
        session = fresh_session(seed=46)
        big = bytes(range(256)) * 8  # 2 KB > initial 128 B slot
        session.post(0, big)
        session.run_until_quiet()
        assert big in [m for (_, _, m) in session.clients[4].received]

    def test_all_clients_see_identical_stream(self):
        session = fresh_session(seed=47)
        session.post(0, b"a")
        session.post(3, b"b")
        session.run_until_quiet()
        streams = {tuple(c.received) for c in session.clients}
        assert len(streams) == 1


class TestChurn:
    def test_round_completes_with_offline_clients(self):
        session = fresh_session(seed=50, policy=Policy(alpha=0.0))
        record = session.run_round(online={0, 1})
        assert record.completed
        assert record.participation == 2

    def test_sender_offline_message_waits(self):
        session = fresh_session(seed=51, policy=Policy(alpha=0.0))
        session.post(4, b"delayed")
        session.run_round(online={0, 1, 2, 3})  # sender offline
        assert session.clients[4].has_pending_traffic
        session.run_round()  # request bit
        session.run_round()  # send
        assert b"delayed" in [m for (_, _, m) in session.clients[0].received]

    def test_alpha_floor_fails_round(self):
        session = fresh_session(seed=52, policy=Policy(alpha=0.9))
        session.run_round()  # basis: 5
        record = session.run_round(online={0})
        assert record.status is RoundStatus.FAILED
        assert record.output is None

    def test_failed_round_resets_basis(self):
        session = fresh_session(seed=53, policy=Policy(alpha=0.9))
        session.run_round()
        session.run_round(online={0, 1})  # fails, basis becomes 2
        record = session.run_round(online={0, 1})
        assert record.completed

    def test_failed_round_message_retransmitted(self):
        session = fresh_session(seed=54, policy=Policy(alpha=0.9))
        session.run_round()
        session.run_round()
        session.post(0, b"survives failure")
        session.run_round()  # request bit round (all online)
        session.run_round(online={0})  # slot open but round fails
        session.run_round()  # all back online: resend
        session.run_round()
        assert b"survives failure" in [
            m for (_, _, m) in session.clients[1].received
        ]

    def test_offline_client_rejoins_consistently(self):
        session = fresh_session(seed=55, policy=Policy(alpha=0.0))
        session.post(1, b"while away")
        session.run_round(online={0, 1, 2, 3})
        session.run_round(online={0, 1, 2, 3})
        session.run_round()  # client 4 returns
        streams = {tuple(c.received) for c in session.clients}
        assert len(streams) == 1


class TestParticipationMetrics:
    def test_participation_published(self):
        session = fresh_session(seed=56, policy=Policy(alpha=0.0))
        record = session.run_round(online={0, 2, 4})
        assert record.participation == 3
        assert session.clients[0].last_participation == 3

    def test_min_participation_client_stays_passive(self):
        session = fresh_session(seed=57, policy=Policy(alpha=0.0))
        session.clients[0].min_participation = 4
        session.post(0, b"secret")
        session.run_round(online={0, 1})  # 2 < 4: passive
        session.run_round(online={0, 1})
        assert session.clients[0].has_pending_traffic  # never sent
        session.run_round()  # 5 online: basis up
        session.run_round()
        session.run_round()
        assert not session.clients[0].has_pending_traffic
