"""Unit tests for slot scheduling: layout, evolution, and determinism."""

import pytest

from repro.core.config import Policy
from repro.core.schedule import (
    RoundLayout,
    Scheduler,
    decode_slot,
    encode_slot,
    open_slot_bytes,
)
from repro.crypto import padding
from repro.errors import ProtocolError
from repro.util.bytesops import set_bit


POLICY = Policy(initial_slot_payload=32, idle_close_rounds=2)


def make_scheduler(num_slots=4):
    return Scheduler(num_slots, POLICY)


def output_with_request(scheduler, slot):
    layout = scheduler.current_layout()
    return set_bit(bytes(layout.total_bytes), layout.request_bit_index(slot), 1)


class TestLayout:
    def test_all_closed_initially(self):
        layout = make_scheduler().current_layout()
        assert layout.total_bytes == layout.request_region_bytes == 1
        assert not any(layout.is_open(s) for s in range(4))

    def test_request_region_rounds_up(self):
        assert Scheduler(9, POLICY).current_layout().request_region_bytes == 2

    def test_open_slot_bytes(self):
        assert open_slot_bytes(32) == 3 + padding.OVERHEAD + 32

    def test_byte_ranges_disjoint_and_ordered(self):
        layout = RoundLayout(3, (16, 0, 8))
        a = layout.slot_byte_range(0)
        c = layout.slot_byte_range(2)
        assert a[0] == layout.request_region_bytes
        assert a[1] <= c[0]
        assert c[1] == layout.total_bytes

    def test_closed_slot_range_raises(self):
        layout = RoundLayout(3, (16, 0, 8))
        with pytest.raises(ProtocolError):
            layout.slot_byte_range(1)

    def test_bit_range_consistent(self):
        layout = RoundLayout(2, (8, 4))
        start, end = layout.slot_byte_range(1)
        assert layout.slot_bit_range(1) == (8 * start, 8 * end)


class TestSlotOpening:
    def test_request_bit_opens_slot(self):
        scheduler = make_scheduler()
        scheduler.advance(output_with_request(scheduler, 2))
        layout = scheduler.current_layout()
        assert layout.capacities == (0, 0, 32, 0)

    def test_no_request_stays_closed(self):
        scheduler = make_scheduler()
        scheduler.advance(bytes(scheduler.current_layout().total_bytes))
        assert scheduler.current_layout().capacities == (0, 0, 0, 0)

    def test_multiple_simultaneous_opens(self):
        scheduler = make_scheduler()
        layout = scheduler.current_layout()
        output = bytes(layout.total_bytes)
        output = set_bit(output, 0, 1)
        output = set_bit(output, 3, 1)
        scheduler.advance(output)
        assert scheduler.current_layout().capacities == (32, 0, 0, 32)


class TestSlotEvolution:
    def _open_slot(self, scheduler, slot=0):
        scheduler.advance(output_with_request(scheduler, slot))

    def test_length_field_grows_slot(self):
        scheduler = make_scheduler()
        self._open_slot(scheduler)
        layout = scheduler.current_layout()
        slot_bytes = encode_slot(layout, POLICY, 0, b"hi", requested_length=100)
        start, end = layout.slot_byte_range(0)
        output = bytearray(layout.total_bytes)
        output[start:end] = slot_bytes
        scheduler.advance(bytes(output))
        assert scheduler.slot_capacity(0) == 100

    def test_zero_length_closes_slot(self):
        scheduler = make_scheduler()
        self._open_slot(scheduler)
        layout = scheduler.current_layout()
        slot_bytes = encode_slot(layout, POLICY, 0, b"", requested_length=0)
        start, end = layout.slot_byte_range(0)
        output = bytearray(layout.total_bytes)
        output[start:end] = slot_bytes
        scheduler.advance(bytes(output))
        assert scheduler.slot_capacity(0) == 0

    def test_requested_length_clamped(self):
        policy = Policy(initial_slot_payload=32, max_slot_payload=64)
        scheduler = Scheduler(2, policy)
        scheduler.advance(set_bit(bytes(1), 0, 1))
        layout = scheduler.current_layout()
        slot_bytes = encode_slot(layout, policy, 0, b"", requested_length=60000)
        start, end = layout.slot_byte_range(0)
        output = bytearray(layout.total_bytes)
        output[start:end] = slot_bytes
        scheduler.advance(bytes(output))
        assert scheduler.slot_capacity(0) == 64

    def test_idle_slot_closes_after_policy_rounds(self):
        scheduler = make_scheduler()
        self._open_slot(scheduler)
        for _ in range(POLICY.idle_close_rounds):
            assert scheduler.slot_capacity(0) == 32
            scheduler.advance(bytes(scheduler.current_layout().total_bytes))
        assert scheduler.slot_capacity(0) == 0

    def test_corrupted_slot_keeps_capacity(self):
        scheduler = make_scheduler()
        self._open_slot(scheduler)
        layout = scheduler.current_layout()
        start, end = layout.slot_byte_range(0)
        output = bytearray(layout.total_bytes)
        output[start:end] = b"\xff" * (end - start)  # garbage: fails padding
        scheduler.advance(bytes(output))
        assert scheduler.slot_capacity(0) == 32

    def test_wrong_output_length_rejected(self):
        scheduler = make_scheduler()
        with pytest.raises(ProtocolError):
            scheduler.advance(bytes(99))


class TestEncodeDecodeSlot:
    def _layout(self):
        return RoundLayout(2, (32, 0))

    def test_roundtrip(self):
        layout = self._layout()
        slot_bytes = encode_slot(
            layout, POLICY, 0, b"payload", requested_length=48, shuffle_request=5
        )
        cleartext = bytes(layout.request_region_bytes) + slot_bytes
        content = decode_slot(layout, POLICY, 0, cleartext)
        assert not content.is_corrupted and not content.is_silent
        assert content.requested_length == 48
        assert content.shuffle_request == 5
        assert content.payload.rstrip(b"\x00") == b"payload"

    def test_silent_slot(self):
        layout = self._layout()
        cleartext = bytes(layout.total_bytes)
        content = decode_slot(layout, POLICY, 0, cleartext)
        assert content.is_silent

    def test_payload_too_big_rejected(self):
        layout = self._layout()
        with pytest.raises(ProtocolError):
            encode_slot(layout, POLICY, 0, b"x" * 33)

    def test_shuffle_request_too_wide_rejected(self):
        layout = self._layout()
        with pytest.raises(ProtocolError):
            encode_slot(layout, POLICY, 0, b"", shuffle_request=256)

    def test_closed_slot_encode_rejected(self):
        layout = self._layout()
        with pytest.raises(ProtocolError):
            encode_slot(layout, POLICY, 1, b"x")

    def test_shuffle_request_readable_in_corrupted_slot(self):
        # The accusation trigger must survive payload corruption (§3.9).
        layout = self._layout()
        slot_bytes = encode_slot(layout, POLICY, 0, b"data", shuffle_request=3)
        corrupted = slot_bytes[:3] + b"\xff" * (len(slot_bytes) - 3)
        cleartext = bytes(layout.request_region_bytes) + corrupted
        content = decode_slot(layout, POLICY, 0, cleartext)
        assert content.is_corrupted
        assert content.shuffle_request == 3


class TestDeterminism:
    def test_parallel_schedulers_stay_identical(self):
        import random

        rng = random.Random(8)
        schedulers = [make_scheduler(3) for _ in range(4)]
        for step in range(12):
            layout = schedulers[0].current_layout()
            output = bytearray(layout.total_bytes)
            # Random request bits and garbage in random open slots.
            for slot in range(3):
                if not layout.is_open(slot) and rng.random() < 0.5:
                    output = bytearray(
                        set_bit(bytes(output), layout.request_bit_index(slot), 1)
                    )
                elif layout.is_open(slot) and rng.random() < 0.5:
                    start, end = layout.slot_byte_range(slot)
                    output[start:end] = rng.randbytes(end - start)
            for scheduler in schedulers:
                scheduler.advance(bytes(output))
            states = {s.current_layout().capacities for s in schedulers}
            assert len(states) == 1, f"diverged at step {step}"
