"""Unit tests for accusation records, rebuttals, and validation."""

import pytest

from repro.core.accusation import (
    Accusation,
    RoundEvidence,
    accusation_max_bytes,
    make_accusation,
    make_rebuttal,
    validate_accusation,
    verify_accusation,
    verify_rebuttal,
)
from repro.crypto.keys import PrivateKey
from repro.errors import AccusationError
from repro.util.bytesops import set_bit


class TestAccusationRecord:
    def test_sign_verify(self, group, rng):
        pseudonym = PrivateKey.generate(group, rng)
        accusation = make_accusation(pseudonym, group, 7, 2, 99)
        assert verify_accusation(pseudonym.public, accusation)

    def test_wrong_pseudonym_fails(self, group, rng):
        pseudonym = PrivateKey.generate(group, rng)
        other = PrivateKey.generate(group, rng)
        accusation = make_accusation(pseudonym, group, 7, 2, 99)
        assert not verify_accusation(other.public, accusation)

    def test_bytes_roundtrip(self, group, rng):
        pseudonym = PrivateKey.generate(group, rng)
        accusation = make_accusation(pseudonym, group, 12, 0, 1234)
        parsed = Accusation.from_bytes(group, accusation.to_bytes(group))
        assert parsed == accusation

    def test_malformed_bytes_rejected(self, group):
        with pytest.raises(AccusationError):
            Accusation.from_bytes(group, b"garbage")

    def test_max_bytes_bound_holds(self, group, rng):
        pseudonym = PrivateKey.generate(group, rng)
        accusation = make_accusation(pseudonym, group, 2**62, 2**31, 2**62)
        assert len(accusation.to_bytes(group)) <= accusation_max_bytes(group)


class TestRebuttal:
    def test_valid_rebuttal(self, group, rng):
        client = PrivateKey.generate(group, rng)
        server = PrivateKey.generate(group, rng)
        rebuttal = make_rebuttal(client, server.public, 1)
        assert verify_rebuttal(group, client.public, server.public, rebuttal)

    def test_rebuttal_wrong_server_fails(self, group, rng):
        client = PrivateKey.generate(group, rng)
        server = PrivateKey.generate(group, rng)
        other = PrivateKey.generate(group, rng)
        rebuttal = make_rebuttal(client, server.public, 1)
        assert not verify_rebuttal(group, client.public, other.public, rebuttal)

    def test_forged_element_fails(self, group, rng):
        import dataclasses

        client = PrivateKey.generate(group, rng)
        server = PrivateKey.generate(group, rng)
        rebuttal = make_rebuttal(client, server.public, 0)
        forged = dataclasses.replace(rebuttal, dh_element=group.random_element(rng))
        assert not verify_rebuttal(group, client.public, server.public, forged)


class TestValidateAccusation:
    def _evidence(self, cleartext, slot_ranges):
        return RoundEvidence(
            round_number=5,
            final_list=(0, 1),
            assignment={0: 0, 1: 0},
            server_ciphertexts=[cleartext],
            cleartext=cleartext,
            total_bytes=len(cleartext),
            slot_bit_ranges=slot_ranges,
        )

    def test_accepts_valid(self, group, rng):
        pseudonym = PrivateKey.generate(group, rng)
        cleartext = set_bit(bytes(8), 20, 1)
        evidence = self._evidence(cleartext, {0: (16, 64)})
        accusation = make_accusation(pseudonym, group, 5, 0, 20)
        validate_accusation(evidence, [pseudonym.public], accusation)

    def test_rejects_zero_bit(self, group, rng):
        pseudonym = PrivateKey.generate(group, rng)
        evidence = self._evidence(bytes(8), {0: (16, 64)})
        accusation = make_accusation(pseudonym, group, 5, 0, 20)
        with pytest.raises(AccusationError):
            validate_accusation(evidence, [pseudonym.public], accusation)

    def test_rejects_bit_outside_slot(self, group, rng):
        pseudonym = PrivateKey.generate(group, rng)
        cleartext = set_bit(bytes(8), 2, 1)
        evidence = self._evidence(cleartext, {0: (16, 64)})
        accusation = make_accusation(pseudonym, group, 5, 0, 2)
        with pytest.raises(AccusationError):
            validate_accusation(evidence, [pseudonym.public], accusation)

    def test_rejects_wrong_round(self, group, rng):
        pseudonym = PrivateKey.generate(group, rng)
        cleartext = set_bit(bytes(8), 20, 1)
        evidence = self._evidence(cleartext, {0: (16, 64)})
        accusation = make_accusation(pseudonym, group, 6, 0, 20)
        with pytest.raises(AccusationError):
            validate_accusation(evidence, [pseudonym.public], accusation)

    def test_rejects_forged_signature(self, group, rng):
        pseudonym = PrivateKey.generate(group, rng)
        impostor = PrivateKey.generate(group, rng)
        cleartext = set_bit(bytes(8), 20, 1)
        evidence = self._evidence(cleartext, {0: (16, 64)})
        accusation = make_accusation(impostor, group, 5, 0, 20)
        with pytest.raises(AccusationError):
            validate_accusation(evidence, [pseudonym.public], accusation)

    def test_rejects_closed_slot(self, group, rng):
        pseudonym = PrivateKey.generate(group, rng)
        cleartext = set_bit(bytes(8), 20, 1)
        evidence = self._evidence(cleartext, {})
        accusation = make_accusation(pseudonym, group, 5, 0, 20)
        with pytest.raises(AccusationError):
            validate_accusation(evidence, [pseudonym.public], accusation)
