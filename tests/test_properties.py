"""Property-based tests (hypothesis) on core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.crypto import padding, prng, tiny_group
from repro.crypto.keys import PrivateKey
from repro.util import bytesops as B
from repro.util import serialization as S


class TestXorProperties:
    @given(st.binary(min_size=0, max_size=256), st.binary(min_size=0, max_size=256))
    def test_xor_self_inverse(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        assert B.xor_bytes(B.xor_bytes(a, b), b) == a

    @given(st.lists(st.binary(min_size=16, max_size=16), min_size=0, max_size=12))
    def test_xor_many_pairwise_cancellation(self, operands):
        # XORing every operand twice yields zero — the DC-net correctness core.
        doubled = operands + operands
        random.Random(1).shuffle(doubled)
        assert B.xor_many(doubled, length=16) == bytes(16)

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=0))
    def test_flip_changes_exactly_one_bit(self, data, raw_index):
        index = raw_index % (8 * len(data))
        flipped = B.flip_bit(data, index)
        assert B.hamming_weight(B.xor_bytes(data, flipped)) == 1

    @given(st.binary(min_size=1, max_size=32))
    def test_get_set_roundtrip(self, data):
        for index in range(0, 8 * len(data), 7):
            bit = B.get_bit(data, index)
            assert B.get_bit(B.set_bit(data, index, bit), index) == bit


class TestSerializationProperties:
    @given(
        st.lists(
            st.one_of(
                st.binary(max_size=64),
                st.integers(min_value=0, max_value=2**128),
                st.text(max_size=32),
            ),
            max_size=8,
        )
    )
    def test_pack_unpack_roundtrip(self, fields):
        assert S.unpack_fields(S.pack_fields(*fields)) == fields

    @given(st.integers(min_value=0, max_value=2**256))
    def test_int_roundtrip(self, value):
        decoded, _ = S.decode_int(S.encode_int(value))
        assert decoded == value


class TestPaddingProperties:
    @given(st.binary(max_size=512))
    @settings(max_examples=50)
    def test_roundtrip(self, message):
        assert padding.decode(padding.encode(message)) == message

    @given(st.binary(min_size=1, max_size=128), st.integers(min_value=0))
    @settings(max_examples=50)
    def test_any_single_flip_detected(self, message, raw_bit):
        encoded = padding.encode(message)
        bit = raw_bit % (8 * len(encoded))
        assert not padding.is_intact(B.flip_bit(encoded, bit))


class TestPrngProperties:
    @given(st.binary(min_size=32, max_size=32), st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=30)
    def test_bit_oracle_consistent_with_stream(self, secret, round_number):
        stream = prng.pair_stream(secret, round_number, 8)
        for k in range(0, 64, 11):
            assert prng.pair_stream_bit(secret, round_number, k) == B.get_bit(stream, k)


class TestDcNetAlgebra:
    """The XOR-cancellation theorem on random instances (tiny group DH)."""

    @given(
        st.integers(min_value=2, max_value=6),   # clients
        st.integers(min_value=1, max_value=3),   # servers
        st.integers(min_value=1, max_value=48),  # round bytes
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=25, deadline=None)
    def test_xor_cancellation(self, n, m, length, pyrandom):
        from repro.crypto import dh

        group = tiny_group()
        rng = random.Random(pyrandom.getrandbits(32))
        client_keys = [PrivateKey.generate(group, rng) for _ in range(n)]
        server_keys = [PrivateKey.generate(group, rng) for _ in range(m)]
        # Random subset of clients online; random messages for online ones.
        online = [i for i in range(n) if rng.random() < 0.8] or [0]
        messages = {i: rng.randbytes(length) for i in online}
        round_number = rng.randrange(1 << 16)

        client_cts = {}
        for i in online:
            streams = [
                prng.pair_stream(dh.shared_secret(client_keys[i], sk.public), round_number, length)
                for sk in server_keys
            ]
            client_cts[i] = B.xor_many([messages[i], *streams], length=length)

        server_cts = []
        for j, sk in enumerate(server_keys):
            streams = [
                prng.pair_stream(dh.shared_secret(sk, client_keys[i].public), round_number, length)
                for i in online
            ]
            own_clients = [i for i in online if i % m == j]
            blobs = [client_cts[i] for i in own_clients]
            server_cts.append(B.xor_many(streams + blobs, length=length))

        output = B.xor_many(server_cts, length=length)
        expected = B.xor_many(list(messages.values()), length=length)
        assert output == expected
