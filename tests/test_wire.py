"""Round-trip property tests for the canonical wire format.

Every envelope body type must encode/decode canonically —
``decode(encode(x)) == x`` field for field — and signatures must stay
valid across the wire boundary: the decoded envelope re-derives the exact
signed payload bytes the sender's node produced.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accusation import Rebuttal, make_rebuttal
from repro.core.keyshuffle import make_session_key, shuffle_run_id
from repro.core.rounds import RoundOutput
from repro.core.session import build_keys
from repro.errors import WireDecodeError
from repro.net import wire
from repro.net.message import (
    ACCUSATION_REVEAL,
    CLIENT_CIPHERTEXT,
    ROUND_OUTPUT,
    SERVER_COMMIT,
    SERVER_INVENTORY,
    SERVER_REVEAL,
    SERVER_SIGNATURE,
    SHUFFLE_SUBMISSION,
)


@pytest.fixture(scope="module")
def round_artifacts():
    """One real protocol round, every envelope type captured off the wire.

    Built once per module: a 2-server/3-client group runs its key shuffle
    and one full round with real crypto, keeping each phase's envelopes.
    """
    from repro.core.client import DissentClient
    from repro.core.server import DissentServer
    from repro.core.keyshuffle import (
        open_shuffle_submissions,
        run_key_shuffle,
        verify_session_keys,
    )

    rng = random.Random(0x31BE)
    built = build_keys("test-256", 2, 3, None, rng)
    servers = [
        DissentServer(built.definition, j, key, random.Random(rng.getrandbits(64)))
        for j, key in enumerate(built.server_keys)
    ]
    clients = [
        DissentClient(built.definition, i, key, random.Random(rng.getrandbits(64)))
        for i, key in enumerate(built.client_keys)
    ]
    purpose = b"dissent.key-shuffle|" + built.definition.group_id()
    privates, session_keys = [], []
    for j, server in enumerate(servers):
        private, session_key = make_session_key(server.key, j, purpose, rng)
        privates.append(private)
        session_keys.append(session_key)
    publics = verify_session_keys(built.definition, session_keys, purpose)
    shuffle_envelopes = [
        client.signed_scheduling_submission(publics, purpose) for client in clients
    ]
    submissions = open_shuffle_submissions(
        built.definition, shuffle_envelopes, shuffle_run_id(purpose, publics)
    )
    result = run_key_shuffle(
        built.definition, privates, submissions, context=purpose, rng=rng
    )
    elements = list(result.slot_elements)
    for node in (*clients, *servers):
        node.learn_schedule(elements)

    clients[1].queue_message(b"wire round-trip payload")
    for server in servers:
        server.open_round(0)
    ciphertexts = [client.produce_ciphertext(0) for client in clients]
    batches = [[], []]
    for i, envelope in enumerate(ciphertexts):
        batches[built.definition.upstream_server(i)].append(envelope)
    for server, batch in zip(servers, batches):
        if batch:
            server.accept_ciphertexts(batch)
    inventories = [server.make_inventory() for server in servers]
    for server in servers:
        server.receive_inventories(inventories)
    commits = [server.compute_ciphertext() for server in servers]
    for server in servers:
        server.receive_commitments(commits)
    reveals = [server.reveal_ciphertext() for server in servers]
    for server in servers:
        server.receive_reveals(reveals)
    signature_envelopes = [server.signature_envelope() for server in servers]
    outputs = [
        server.receive_signature_envelopes(signature_envelopes)
        for server in servers
    ]
    for server in servers:
        server.finish_round(outputs[0])
    output_envelope = servers[0].output_envelope(outputs[0])
    reveal_envelopes = [server.disclosure_envelope(0, 7) for server in servers]
    return {
        "definition": built.definition,
        "group": built.definition.group,
        "servers": servers,
        "clients": clients,
        "client_keys": built.definition.client_keys,
        "server_keys": built.definition.server_keys,
        "envelopes": {
            CLIENT_CIPHERTEXT: (ciphertexts[0], built.definition.client_keys[0]),
            SERVER_INVENTORY: (inventories[1], built.definition.server_keys[1]),
            SERVER_COMMIT: (commits[0], built.definition.server_keys[0]),
            SERVER_REVEAL: (reveals[1], built.definition.server_keys[1]),
            SERVER_SIGNATURE: (
                signature_envelopes[0],
                built.definition.server_keys[0],
            ),
            ROUND_OUTPUT: (output_envelope, built.definition.server_keys[0]),
            SHUFFLE_SUBMISSION: (
                shuffle_envelopes[2],
                built.definition.client_keys[2],
            ),
            ACCUSATION_REVEAL: (
                reveal_envelopes[1],
                built.definition.server_keys[1],
            ),
        },
        "output": outputs[0],
    }


ALL_TYPES = [
    CLIENT_CIPHERTEXT,
    SERVER_INVENTORY,
    SERVER_COMMIT,
    SERVER_REVEAL,
    SERVER_SIGNATURE,
    ROUND_OUTPUT,
    SHUFFLE_SUBMISSION,
    ACCUSATION_REVEAL,
]


class TestEnvelopeRoundTrip:
    @pytest.mark.parametrize("msg_type", ALL_TYPES)
    def test_every_type_roundtrips_canonically(self, round_artifacts, msg_type):
        group = round_artifacts["group"]
        envelope, _ = round_artifacts["envelopes"][msg_type]
        encoded = wire.encode_envelope(group, envelope)
        decoded = wire.decode_envelope(group, encoded)
        assert decoded == envelope
        # Canonical: re-encoding the decoded envelope is byte-identical.
        assert wire.encode_envelope(group, decoded) == encoded

    @pytest.mark.parametrize("msg_type", ALL_TYPES)
    def test_signature_survives_the_wire(self, round_artifacts, msg_type):
        group = round_artifacts["group"]
        envelope, sender_key = round_artifacts["envelopes"][msg_type]
        decoded = wire.decode_envelope(group, wire.encode_envelope(group, envelope))
        decoded.verify(sender_key)  # raises on any re-serialization drift

    def test_tampered_body_fails_after_roundtrip(self, round_artifacts):
        import dataclasses

        from repro.errors import InvalidSignature

        group = round_artifacts["group"]
        envelope, sender_key = round_artifacts["envelopes"][CLIENT_CIPHERTEXT]
        tampered = dataclasses.replace(
            envelope, body=bytes([envelope.body[0] ^ 1]) + envelope.body[1:]
        )
        decoded = wire.decode_envelope(group, wire.encode_envelope(group, tampered))
        with pytest.raises(InvalidSignature):
            decoded.verify(sender_key)


class TestBodyCodecs:
    def test_inventory_body_matches_signed_format(self, round_artifacts):
        envelope, _ = round_artifacts["envelopes"][SERVER_INVENTORY]
        indices = wire.decode_inventory_body(envelope.body)
        # The codec reproduces the exact bytes the server signed.
        assert wire.encode_inventory_body(indices) == envelope.body

    @given(st.lists(st.integers(min_value=0, max_value=2**40), max_size=20))
    def test_inventory_roundtrip(self, indices):
        assert list(
            wire.decode_inventory_body(wire.encode_inventory_body(indices))
        ) == list(indices)

    def test_signature_body_roundtrip(self, round_artifacts):
        group = round_artifacts["group"]
        envelope, _ = round_artifacts["envelopes"][SERVER_SIGNATURE]
        signature = wire.decode_signature_body(group, envelope.body)
        assert wire.encode_signature_body(group, signature) == envelope.body

    def test_round_output_roundtrip(self, round_artifacts):
        group = round_artifacts["group"]
        output = round_artifacts["output"]
        decoded = wire.decode_round_output_body(
            group, wire.encode_round_output_body(group, output)
        )
        assert decoded == output
        assert isinstance(decoded, RoundOutput)

    def test_shuffle_submission_roundtrip(self, round_artifacts):
        group = round_artifacts["group"]
        envelope, _ = round_artifacts["envelopes"][SHUFFLE_SUBMISSION]
        run_id, vector = wire.decode_shuffle_submission_body(group, envelope.body)
        assert (
            wire.encode_shuffle_submission_body(group, run_id, vector)
            == envelope.body
        )

    def test_disclosure_roundtrip(self, round_artifacts):
        group = round_artifacts["group"]
        envelope, _ = round_artifacts["envelopes"][ACCUSATION_REVEAL]
        bit_index, disclosure = wire.decode_accusation_reveal_body(
            group, envelope.body
        )
        assert bit_index == 7
        again = wire.encode_accusation_reveal_body(group, bit_index, disclosure)
        assert again == envelope.body
        # Deep equality: nested envelopes and pair bits survive.
        server = round_artifacts["servers"][1]
        original = server.trace_disclosure(0, 7)
        assert dict(disclosure.pair_bits) == dict(original.pair_bits)
        assert dict(disclosure.client_envelopes) == dict(original.client_envelopes)

    def test_evidence_roundtrip(self, round_artifacts):
        evidence = round_artifacts["servers"][0].archive[0].to_evidence()
        decoded = wire.decode_evidence(wire.encode_evidence(evidence))
        assert decoded.round_number == evidence.round_number
        assert decoded.final_list == tuple(evidence.final_list)
        assert dict(decoded.assignment) == dict(evidence.assignment)
        assert list(decoded.server_ciphertexts) == list(evidence.server_ciphertexts)
        assert decoded.cleartext == evidence.cleartext
        assert decoded.total_bytes == evidence.total_bytes
        assert dict(decoded.slot_bit_ranges) == dict(evidence.slot_bit_ranges)

    def test_rebuttal_roundtrip(self, round_artifacts):
        definition = round_artifacts["definition"]
        client = round_artifacts["clients"][0]
        rebuttal = make_rebuttal(client.key, definition.server_keys[1], 1)
        group = definition.group
        decoded = wire.decode_rebuttal(group, wire.encode_rebuttal(group, rebuttal))
        assert decoded == rebuttal
        assert isinstance(decoded, Rebuttal)

    def test_rebuttal_none_roundtrip(self, group):
        assert wire.encode_rebuttal(group, None) == b""
        assert wire.decode_rebuttal(group, b"") is None

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=100),
            st.integers(min_value=0, max_value=2**32),
            max_size=12,
        )
    )
    def test_int_pairs_roundtrip(self, pairs):
        assert wire.decode_int_pairs(wire.encode_int_pairs(pairs)) == pairs


class TestRoutedFrames:
    @given(
        st.text(max_size=24),
        st.text(max_size=24),
        st.text(min_size=1, max_size=24),
        st.integers(min_value=0, max_value=2**31),
        st.binary(max_size=512),
    )
    def test_roundtrip(self, to, sender, kind, seq, body):
        frame = wire.decode_routed(wire.encode_routed(to, sender, kind, seq, body))
        assert (frame.to, frame.sender, frame.kind, frame.seq, frame.body) == (
            to,
            sender,
            kind,
            seq,
            body,
        )

    def test_garbage_is_typed_error(self):
        with pytest.raises(WireDecodeError):
            wire.decode_routed(b"\x00\x01garbage")


class TestFraming:
    @given(st.lists(st.binary(max_size=300), max_size=16))
    def test_frames_roundtrip_through_decoder(self, payloads):
        stream = b"".join(wire.encode_frame(p) for p in payloads)
        assert list(wire.iter_frames(stream)) == payloads

    @given(st.lists(st.binary(max_size=300), min_size=1, max_size=8), st.data())
    def test_arbitrary_chunking_preserves_frames(self, payloads, data):
        stream = b"".join(wire.encode_frame(p) for p in payloads)
        decoder = wire.FrameDecoder()
        out = []
        offset = 0
        while offset < len(stream):
            step = data.draw(st.integers(min_value=1, max_value=64))
            out.extend(decoder.feed(stream[offset : offset + step]))
            offset += step
        decoder.finish()
        assert out == payloads
