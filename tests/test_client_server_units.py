"""Unit-level tests of client/server internals not covered by integration."""

import pytest

from tests.helpers import fresh_session
from repro.core import Policy
from repro.core.client import frame_messages, unframe_messages
from repro.core.server import Phase
from repro.errors import CommitmentMismatch, ProtocolError
from repro.net.message import CLIENT_CIPHERTEXT, make_envelope


class TestMessageFraming:
    def test_roundtrip(self):
        payload, leftovers = frame_messages([b"one", b"two"], 64)
        assert leftovers == []
        assert unframe_messages(payload.ljust(64, b"\x00")) == [b"one", b"two"]

    def test_overflow_spills_to_leftovers(self):
        payload, leftovers = frame_messages([b"aaaa", b"bbbb"], 7)
        assert unframe_messages(payload.ljust(7, b"\x00")) == [b"aaaa"]
        assert leftovers == [b"bbbb"]

    def test_fifo_order_preserved(self):
        messages = [b"1", b"22", b"333"]
        payload, leftovers = frame_messages(messages, 100)
        assert unframe_messages(payload.ljust(100, b"\x00")) == messages

    def test_oversized_head_blocks_queue(self):
        payload, leftovers = frame_messages([b"x" * 50, b"y"], 10)
        assert payload == b""
        assert leftovers == [b"x" * 50, b"y"]

    def test_truncated_frame_ignored(self):
        payload, _ = frame_messages([b"hello"], 16)
        assert unframe_messages(payload[:4]) == []

    def test_empty_payload(self):
        assert unframe_messages(bytes(32)) == []


class TestClientInternals:
    def test_cleartext_zero_when_silent(self):
        session = fresh_session(seed=71)
        client = session.clients[0]
        layout = client.scheduler.current_layout()
        assert client.build_cleartext(0) == bytes(layout.total_bytes)

    def test_request_bit_set_when_traffic_queued(self):
        from repro.util.bytesops import get_bit

        session = fresh_session(seed=72)
        client = session.clients[1]
        client.queue_message(b"data")
        cleartext = client.build_cleartext(0)
        layout = client.scheduler.current_layout()
        assert get_bit(cleartext, layout.request_bit_index(client.slot)) == 1

    def test_request_bit_randomized_on_retry(self):
        session = fresh_session(seed=73)
        client = session.clients[2]
        client.queue_message(b"data")
        first = client._request_bit_value()
        assert first == 1  # deterministic first attempt (§3.8)
        retries = {client._request_bit_value() for _ in range(32)}
        assert retries == {0, 1}  # randomized afterwards

    def test_queue_empty_message_rejected(self):
        session = fresh_session(seed=74)
        with pytest.raises(ProtocolError):
            session.clients[0].queue_message(b"")

    def test_output_signature_checked(self):
        import dataclasses

        session = fresh_session(seed=75)
        record = session.run_round()
        bad = dataclasses.replace(record.output, participation=99)
        from repro.errors import InvalidSignature

        with pytest.raises(InvalidSignature):
            session.clients[0].verify_output(bad)

    def test_wrong_signature_count_rejected(self):
        import dataclasses

        session = fresh_session(seed=76)
        record = session.run_round()
        bad = dataclasses.replace(
            record.output, signatures=record.output.signatures[:-1]
        )
        from repro.errors import InvalidSignature

        with pytest.raises(InvalidSignature):
            session.clients[0].verify_output(bad)


class TestServerInternals:
    def test_phase_machine_enforced(self):
        session = fresh_session(seed=77)
        server = session.servers[0]
        with pytest.raises(ProtocolError):
            server.make_inventory()  # no round open
        server.open_round(0)
        with pytest.raises(ProtocolError):
            server.reveal_ciphertext()  # must commit first

    def test_wrong_round_submission_rejected(self):
        session = fresh_session(seed=78)
        server = session.servers[0]
        server.open_round(0)
        envelope = session.clients[0].produce_ciphertext(5)  # wrong round
        assert not server.accept_ciphertext(envelope)
        server.abandon_round()

    def test_wrong_length_submission_rejected(self):
        session = fresh_session(seed=79)
        server = session.servers[0]
        server.open_round(0)
        client = session.clients[0]
        envelope = make_envelope(
            client.key, CLIENT_CIPHERTEXT, client.name, client.group_id, 0, b"short"
        )
        assert not server.accept_ciphertext(envelope)
        server.abandon_round()

    def test_unknown_sender_rejected(self):
        session = fresh_session(seed=80)
        server = session.servers[0]
        server.open_round(0)
        client = session.clients[0]
        layout = server.scheduler.current_layout()
        envelope = make_envelope(
            client.key, CLIENT_CIPHERTEXT, "client-99", client.group_id, 0,
            bytes(layout.total_bytes),
        )
        assert not server.accept_ciphertext(envelope)
        server.abandon_round()

    def test_expelled_client_rejected_at_accept(self):
        session = fresh_session(seed=81)
        server = session.servers[0]
        server.expel_client(2)
        server.open_round(0)
        envelope = session.clients[2].produce_ciphertext(0)
        assert not server.accept_ciphertext(envelope)
        server.abandon_round()

    def test_commitment_mismatch_detected(self):
        import dataclasses

        session = fresh_session(seed=82)
        for server in session.servers:
            server.open_round(0)
        for i in range(5):
            envelope = session.clients[i].produce_ciphertext(0)
            session.servers[i % 3].accept_ciphertext(envelope)
        inventories = [s.make_inventory() for s in session.servers]
        for s in session.servers:
            s.receive_inventories(inventories)
        commits = [s.compute_ciphertext() for s in session.servers]
        for s in session.servers:
            s.receive_commitments(commits)
        reveals = [s.reveal_ciphertext() for s in session.servers]
        # Tamper with server 1's reveal: commitment check must fire.
        tampered = make_envelope(
            session.servers[1].key,
            reveals[1].msg_type,
            reveals[1].sender,
            reveals[1].group_id,
            reveals[1].round_number,
            b"\x00" * len(reveals[1].body),
        )
        bad_set = [reveals[0], tampered, reveals[2]]
        with pytest.raises(CommitmentMismatch):
            session.servers[0].receive_reveals(bad_set)

    def test_archive_trimmed_to_policy(self):
        session = fresh_session(seed=83, policy=Policy(archive_rounds=2, alpha=0.0))
        for _ in range(5):
            session.run_round()
        for server in session.servers:
            assert len(server.archive) <= 2
            assert max(server.archive) == 4

    def test_dedup_assignment_lowest_server_wins(self):
        session = fresh_session(seed=84)
        for server in session.servers:
            server.open_round(0)
        # Client 0 submits to servers 0 AND 2.
        envelope = session.clients[0].produce_ciphertext(0)
        session.servers[0].accept_ciphertext(envelope)
        session.servers[2].accept_ciphertext(envelope)
        for i in range(1, 5):
            session.servers[i % 3].accept_ciphertext(
                session.clients[i].produce_ciphertext(0)
            )
        inventories = [s.make_inventory() for s in session.servers]
        for s in session.servers:
            count = s.receive_inventories(inventories)
        assert count == 5  # not double-counted
        assert session.servers[0].state.assignment[0] == 0  # lowest index kept
        # XOR correctness with the duplicate: round must still combine.
        commits = [s.compute_ciphertext() for s in session.servers]
        for s in session.servers:
            s.receive_commitments(commits)
        reveals = [s.reveal_ciphertext() for s in session.servers]
        cleartexts = {s.receive_reveals(reveals) for s in session.servers}
        assert len(cleartexts) == 1
        for s in session.servers:
            s.sign_output()
            s.abandon_round()


class TestKeyShuffleLayer:
    def test_session_key_verification(self):
        from repro.core.keyshuffle import make_session_key, verify_session_keys
        from repro.errors import ShuffleError

        session = fresh_session(seed=85)
        privates, session_keys = [], []
        for j, server in enumerate(session.servers):
            private, sk = make_session_key(server.key, j, b"purpose")
            privates.append(private)
            session_keys.append(sk)
        publics = verify_session_keys(session.definition, session_keys, b"purpose")
        assert [p.y for p in publics] == [k.y for k in privates]
        with pytest.raises(ShuffleError):
            verify_session_keys(session.definition, session_keys, b"other-purpose")

    def test_wrong_key_order_rejected(self):
        from repro.core.keyshuffle import make_session_key, verify_session_keys
        from repro.errors import ShuffleError

        session = fresh_session(seed=86)
        session_keys = []
        for j, server in enumerate(session.servers):
            _, sk = make_session_key(server.key, j, b"p")
            session_keys.append(sk)
        with pytest.raises(ShuffleError):
            verify_session_keys(
                session.definition, list(reversed(session_keys)), b"p"
            )
