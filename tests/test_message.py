"""Unit tests for the signed envelope layer."""

import pytest

from repro.crypto.keys import PrivateKey
from repro.errors import InvalidSignature, ProtocolError
from repro.net.message import CLIENT_CIPHERTEXT, SERVER_COMMIT, make_envelope


class TestEnvelope:
    def test_roundtrip_verifies(self, keypair):
        envelope = make_envelope(
            keypair, CLIENT_CIPHERTEXT, "client-0", b"gid", 3, b"body"
        )
        envelope.verify(keypair.public)

    def test_tampered_body_fails(self, keypair):
        import dataclasses

        envelope = make_envelope(
            keypair, CLIENT_CIPHERTEXT, "client-0", b"gid", 3, b"body"
        )
        bad = dataclasses.replace(envelope, body=b"evil")
        with pytest.raises(InvalidSignature):
            bad.verify(keypair.public)

    def test_tampered_round_fails(self, keypair):
        import dataclasses

        envelope = make_envelope(keypair, SERVER_COMMIT, "server-1", b"gid", 3, b"c")
        bad = dataclasses.replace(envelope, round_number=4)
        with pytest.raises(InvalidSignature):
            bad.verify(keypair.public)

    def test_tampered_sender_fails(self, keypair):
        import dataclasses

        envelope = make_envelope(keypair, SERVER_COMMIT, "server-1", b"gid", 3, b"c")
        bad = dataclasses.replace(envelope, sender="server-2")
        with pytest.raises(InvalidSignature):
            bad.verify(keypair.public)

    def test_wrong_key_fails(self, group, keypair, rng):
        other = PrivateKey.generate(group, rng)
        envelope = make_envelope(keypair, SERVER_COMMIT, "server-1", b"gid", 0, b"c")
        with pytest.raises(InvalidSignature):
            envelope.verify(other.public)

    def test_unknown_type_rejected(self, keypair):
        with pytest.raises(ProtocolError):
            make_envelope(keypair, "bogus-type", "x", b"gid", 0, b"")
