"""Shared test helpers importable as ``tests.helpers``."""

from repro.core import DissentSession


def fresh_session(num_servers=3, num_clients=5, seed=7, policy=None):
    """A freshly scheduled real-crypto session for mutation-heavy tests."""
    session = DissentSession.build(
        num_servers=num_servers, num_clients=num_clients, seed=seed, policy=policy
    )
    session.setup()
    return session
