"""Telemetry unit tests: metrics, tracer, exporters, report CLI.

Covers the ISSUE-mandated invariants: histogram bucket-edge semantics
and cross-process merge, deterministic span logs under a fake clock,
read-through compatibility of the migrated PadPrefetcher / VerdictCounters
counters, and bit-identical session outputs with tracing on vs off.
"""

import json

import pytest

from repro.core.session import DissentSession
from repro.crypto.prng import PadPrefetcher
from repro.obs import (
    LATENCY_EDGES_S,
    NULL_REGISTRY,
    NULL_TRACER,
    Histogram,
    MetricsRegistry,
    Tracer,
    events_ndjson,
    global_registry,
    phase_table,
    render_table,
    set_global_registry,
    snapshot_json,
)
from repro.obs import report as report_cli
from repro.verdict.session import VerdictCounters


class FakeClock:
    """Deterministic monotonic clock: each read advances by ``step``."""

    def __init__(self, step: float = 0.125) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# ---------------------------------------------------------------------------
# Histograms
# ---------------------------------------------------------------------------


class TestHistogram:
    def test_bucket_edges_are_inclusive_upper_bounds(self):
        h = Histogram("t", (1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 9.0, 100.0):
            h.observe(value)
        # bucket i counts values <= edges[i]; the last bucket is overflow.
        assert h.counts == [2, 2, 2, 2]
        assert h.count == 8
        assert h.min == 0.5
        assert h.max == 100.0
        assert h.sum == pytest.approx(121.0)

    def test_quantile_reports_bucket_upper_edge(self):
        h = Histogram("t", (1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            h.observe(value)
        assert h.quantile(0.5) == 2.0
        assert h.quantile(0.0) == 1.0
        # Overflow bucket has no upper edge: fall back to the exact max.
        h.observe(50.0)
        assert h.quantile(1.0) == 50.0

    def test_edges_must_be_strictly_increasing(self):
        with pytest.raises(ValueError):
            Histogram("t", ())
        with pytest.raises(ValueError):
            Histogram("t", (1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("t", (2.0, 1.0))

    def test_merge_adds_buckets_and_keeps_extremes(self):
        a = Histogram("t", (1.0, 2.0))
        b = Histogram("t", (1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(9.0)
        a.merge(b.state())
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.min == 0.5
        assert a.max == 9.0

    def test_merge_rejects_mismatched_edges(self):
        a = Histogram("t", (1.0, 2.0))
        with pytest.raises(ValueError):
            a.merge(Histogram("t", (1.0, 3.0)).state())
        with pytest.raises(ValueError):
            a.merge(Histogram("t", (1.0, 2.0, 3.0)).state())


# ---------------------------------------------------------------------------
# Registry: snapshot, merge, null object
# ---------------------------------------------------------------------------


class TestRegistry:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("c.one").inc(3)
        registry.gauge("g.depth").set_max(7)
        registry.histogram("h.lat", (0.5, 1.0)).observe(0.75)
        return registry

    def test_snapshot_round_trip(self):
        registry = self._populated()
        clone = MetricsRegistry.from_snapshot(registry.snapshot())
        assert clone.snapshot() == registry.snapshot()

    def test_cross_process_merge_semantics(self):
        merged = MetricsRegistry()
        merged.merge_snapshot(self._populated().snapshot())
        merged.merge_snapshot(self._populated().snapshot())
        snap = merged.snapshot()
        assert snap["counters"]["c.one"] == 6  # counters add
        assert snap["gauges"]["g.depth"] == 7  # gauges keep the max
        assert snap["histograms"]["h.lat"]["count"] == 2  # buckets add

    def test_merge_empty_snapshot_is_noop(self):
        registry = self._populated()
        before = registry.snapshot()
        registry.merge_snapshot({})
        assert registry.snapshot() == before

    def test_null_registry_is_inert(self):
        assert NULL_REGISTRY.enabled is False
        NULL_REGISTRY.counter("x").inc(5)
        NULL_REGISTRY.gauge("y").set_max(5)
        NULL_REGISTRY.histogram("z", (1.0,)).observe(0.5)
        assert NULL_REGISTRY.snapshot() == {}

    def test_global_registry_install_and_restore(self):
        mine = MetricsRegistry()
        old = set_global_registry(mine)
        try:
            assert global_registry() is mine
        finally:
            set_global_registry(old)
        assert global_registry() is old


# ---------------------------------------------------------------------------
# Tracer: span nesting, ordering, fake-clock determinism
# ---------------------------------------------------------------------------


class TestTracer:
    def _run_workload(self, tracer: Tracer) -> None:
        with tracer.span("round", round=0) as round_span:
            with round_span.child("phase", name="build"):
                pass
            with round_span.child("phase", name="commit"):
                pass
        with tracer.span("round", round=1):
            pass

    def test_span_ids_and_lineage(self):
        tracer = Tracer(clock=FakeClock())
        self._run_workload(tracer)
        # Children finish before their parent, ids are creation-ordered.
        names = [(e.name, e.attrs.get("name")) for e in tracer.events]
        assert names == [
            ("phase", "build"),
            ("phase", "commit"),
            ("round", None),
            ("round", None),
        ]
        build, commit, round0, round1 = tracer.events
        assert round0.span_id == 1 and round0.parent_id is None
        assert build.parent_id == round0.span_id
        assert commit.parent_id == round0.span_id
        assert round1.span_id == 4

    def test_identical_fake_clocks_give_identical_ndjson(self):
        logs = []
        for _ in range(2):
            tracer = Tracer(clock=FakeClock())
            self._run_workload(tracer)
            logs.append(events_ndjson(tracer.events))
        assert logs[0] == logs[1]
        # And the log is real NDJSON: one object per line.
        lines = logs[0].strip().split("\n")
        assert len(lines) == 4
        assert all(isinstance(json.loads(line), dict) for line in lines)

    def test_durations_feed_phase_histograms(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, clock=FakeClock())
        self._run_workload(tracer)
        snap = registry.snapshot()
        assert snap["histograms"]["span.phase.build"]["count"] == 1
        assert snap["histograms"]["span.phase.commit"]["count"] == 1
        assert snap["histograms"]["span.round"]["count"] == 2

    def test_double_finish_records_once(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("round", round=0) as span:
            span.finish()
        assert len(tracer.events) == 1

    def test_event_cap_drops_and_counts(self):
        registry = MetricsRegistry()
        tracer = Tracer(registry=registry, clock=FakeClock(), max_events=2)
        for r in range(5):
            with tracer.span("round", round=r):
                pass
        assert len(tracer.events) == 2
        assert registry.counter("trace.events_dropped").value == 3
        # Dropped spans still feed the histogram.
        assert registry.snapshot()["histograms"]["span.round"]["count"] == 5

    def test_null_tracer_is_inert(self):
        span = NULL_TRACER.span("round", round=9)
        assert span.child("phase", name="build") is span
        with span:
            pass
        assert NULL_TRACER.events == ()


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestExporters:
    def test_phase_table_orders_paper_phases(self):
        registry = MetricsRegistry()
        for phase in ("verify", "build", "commit", "zzz-custom"):
            registry.histogram(
                f"span.phase.{phase}", LATENCY_EDGES_S
            ).observe(0.01)
        table = phase_table(registry.snapshot())
        rows = [line.split()[0] for line in table.splitlines()[2:]]
        assert rows == ["build", "commit", "verify", "zzz-custom"]

    def test_phase_table_empty(self):
        assert phase_table({}) == "(no phase timings recorded)"

    def test_snapshot_json_stable(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        text = snapshot_json(registry.snapshot())
        assert text.endswith("\n")
        assert text == snapshot_json(MetricsRegistry.from_snapshot(
            registry.snapshot()).snapshot())

    def test_render_table_lists_everything(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set_max(4)
        registry.histogram("h", (1.0,)).observe(0.5)
        text = render_table(registry.snapshot())
        assert "counters" in text and "gauges" in text and "histograms" in text
        assert render_table({}) == "(empty snapshot)"


# ---------------------------------------------------------------------------
# Report CLI
# ---------------------------------------------------------------------------


class TestReportCli:
    def _snapshot_file(self, tmp_path):
        registry = MetricsRegistry()
        registry.histogram("span.phase.commit", LATENCY_EDGES_S).observe(0.004)
        path = tmp_path / "snap.json"
        path.write_text(snapshot_json(registry.snapshot()))
        return path

    def test_renders_phase_breakdown(self, tmp_path, capsys):
        path = self._snapshot_file(tmp_path)
        assert report_cli.main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "phase breakdown" in out and "commit" in out

    def test_full_listing(self, tmp_path, capsys):
        path = self._snapshot_file(tmp_path)
        assert report_cli.main([str(path), "--full"]) == 0
        assert "histograms" in capsys.readouterr().out

    def test_error_exits(self, tmp_path, capsys):
        assert report_cli.main([]) == 2
        assert report_cli.main([str(tmp_path / "missing.json")]) == 1
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        assert report_cli.main([str(bad)]) == 1
        capsys.readouterr()


# ---------------------------------------------------------------------------
# Migrated counters keep their legacy read API
# ---------------------------------------------------------------------------


class TestCounterMigration:
    def test_pad_prefetcher_read_through(self):
        registry = MetricsRegistry()
        fetcher = PadPrefetcher(registry=registry)
        assert fetcher.hits == 0 and fetcher.misses == 0
        assert fetcher.prefetched == 0
        snap = registry.snapshot()
        assert "prng.pads.hits" in snap["counters"]
        assert "prng.pads.misses" in snap["counters"]
        assert "prng.pads.prefetched" in snap["counters"]

    def test_pad_prefetcher_counts_without_registry(self):
        # No registry: a private one keeps stats() working as before.
        fetcher = PadPrefetcher()
        assert fetcher.stats()["hits"] == 0

    def test_verdict_counters_read_through_and_increment(self):
        registry = MetricsRegistry()
        counters = VerdictCounters(registry=registry)
        counters.client_proofs_made += 3
        counters.rejected_submissions += 1
        assert counters.client_proofs_made == 3
        assert counters.rejected_submissions == 1
        snap = registry.snapshot()
        assert snap["counters"]["verdict.client_proofs_made"] == 3
        assert snap["counters"]["verdict.rejected_submissions"] == 1


# ---------------------------------------------------------------------------
# Parity: telemetry must never perturb protocol bytes
# ---------------------------------------------------------------------------


class TestSessionParity:
    def _outputs(self, telemetry: bool):
        session = DissentSession.build(
            num_servers=2, num_clients=4, seed=1234, telemetry=telemetry
        )
        session.setup()
        session.post(1, b"parity check message")
        session.post(3, b"second slot traffic")
        records = session.run_rounds(3)
        return [
            (r.status, r.participation, r.output.cleartext if r.output else None)
            for r in records
        ], session

    def test_outputs_bit_identical_tracing_on_vs_off(self):
        off, _ = self._outputs(telemetry=False)
        on, session = self._outputs(telemetry=True)
        assert on == off
        # And the traced run actually recorded phase spans.
        snap = session.metrics()
        assert snap["histograms"]["span.phase.commit"]["count"] == 3
        assert snap["counters"]["session.rounds_completed"] == 3
        assert any(e.name == "round" for e in session.tracer.events)
