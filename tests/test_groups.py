"""Unit tests for Schnorr group arithmetic and message embedding."""

import pytest

from repro.crypto import groups as G
from repro.errors import CryptoError


class TestGroupStructure:
    def test_safe_prime_relation(self):
        for factory in (G.tiny_group, G.testing_group, G.medium_group):
            group = factory()
            assert group.p == 2 * group.q + 1

    def test_generator_in_subgroup(self):
        for factory in (G.tiny_group, G.testing_group, G.production_group):
            group = factory()
            assert group.is_element(group.g)

    def test_generator_has_order_q(self, group):
        assert group.exp(group.g, group.q) == 1
        assert group.exp(group.g, 1) == group.g

    def test_toy_flags(self):
        assert G.testing_group().is_toy
        assert not G.production_group().is_toy
        assert not G.wide_group().is_toy

    def test_identity_membership(self, group):
        assert group.is_element(1)

    def test_non_elements_rejected(self, group):
        assert not group.is_element(0)
        assert not group.is_element(group.p)
        assert not group.is_element(group.p - 1)  # order 2, not in QR subgroup

    def test_require_element_raises(self, group):
        with pytest.raises(CryptoError):
            group.require_element(0)


class TestArithmetic:
    def test_exp_mul_consistency(self, group, rng):
        a, b = group.random_scalar(rng), group.random_scalar(rng)
        lhs = group.exp(group.g, a + b)
        rhs = group.mul(group.exp(group.g, a), group.exp(group.g, b))
        assert lhs == rhs

    def test_inverse(self, group, rng):
        x = group.random_element(rng)
        assert group.mul(x, group.inv(x)) == 1

    def test_exp_reduces_mod_q(self, group, rng):
        e = group.random_scalar(rng)
        assert group.exp(group.g, e) == group.exp(group.g, e + group.q)

    def test_random_element_in_subgroup(self, group, rng):
        for _ in range(10):
            assert group.is_element(group.random_element(rng))

    def test_random_scalar_range(self, group, rng):
        for _ in range(50):
            s = group.random_scalar(rng)
            assert 1 <= s < group.q


class TestEncoding:
    def test_element_bytes_roundtrip(self, group, rng):
        x = group.random_element(rng)
        assert group.element_from_bytes(group.element_to_bytes(x)) == x

    def test_wrong_width_rejected(self, group):
        with pytest.raises(CryptoError):
            group.element_from_bytes(b"\x01")

    def test_non_element_encoding_rejected(self, group):
        bad = (group.p - 1).to_bytes(group.element_bytes, "big")
        with pytest.raises(CryptoError):
            group.element_from_bytes(bad)


class TestMessageEmbedding:
    def test_roundtrip_max_length(self):
        group = G.medium_group()
        message = bytes(range(group.message_bytes))[: group.message_bytes]
        assert group.decode_message(group.encode_message(message)) == message

    def test_roundtrip_short(self):
        group = G.medium_group()
        assert group.decode_message(group.encode_message(b"hi")) == b"hi"

    def test_roundtrip_empty(self):
        group = G.medium_group()
        assert group.decode_message(group.encode_message(b"")) == b""

    def test_leading_zeros_preserved(self):
        group = G.medium_group()
        message = b"\x00\x00\x01"
        assert group.decode_message(group.encode_message(message)) == message

    def test_embedded_is_element(self):
        group = G.medium_group()
        assert group.is_element(group.encode_message(b"test"))

    def test_too_long_rejected(self):
        group = G.medium_group()
        with pytest.raises(CryptoError):
            group.encode_message(b"x" * (group.message_bytes + 1))

    def test_decode_random_element_usually_fails(self, rng):
        group = G.medium_group()
        failures = 0
        for _ in range(8):
            try:
                group.decode_message(group.random_element(rng))
            except CryptoError:
                failures += 1
        assert failures >= 6  # guard byte catches almost everything


class TestFixedBaseExponentiation:
    def test_matches_pow_for_random_exponents(self, group, rng):
        for _ in range(16):
            base = group.random_element(rng)
            e = rng.randrange(0, 2 * group.q)  # includes >q (reduced) cases
            assert group.exp_fixed(base, e) == group.exp(base, e)

    def test_generator_shortcut(self, group, rng):
        e = group.random_scalar(rng)
        assert group.exp_g(e) == group.exp(group.g, e)

    def test_edge_exponents(self, group):
        assert group.exp_fixed(group.g, 0) == 1
        assert group.exp_fixed(group.g, 1) == group.g
        assert group.exp_fixed(group.g, group.q) == 1
        assert group.exp_fixed(group.g, group.q + 3) == group.exp(group.g, 3)

    def test_table_is_cached_per_base(self, group):
        t1 = G._fixed_base_table(group.p, group.q, group.g)
        t2 = G._fixed_base_table(group.p, group.q, group.g)
        assert t1 is t2

    def test_tiny_group_full_sweep(self, tiny):
        for e in range(0, 50):
            assert tiny.exp_fixed(tiny.g, e) == tiny.exp(tiny.g, e)


class TestMembershipViaLegendre:
    """is_element now uses the Jacobi symbol; verdicts must match x**q mod p."""

    def test_matches_exponentiation_test(self, group, rng):
        candidates = [group.random_element(rng) for _ in range(8)]
        candidates += [group.p - c for c in candidates[:4]]  # non-QRs
        candidates += [0, 1, group.p - 1, group.p, group.p + 5]
        for x in candidates:
            slow = 1 <= x < group.p and pow(x, group.q, group.p) == 1
            assert group.is_element(x) == slow

    def test_tiny_group_spot_checks(self, tiny, rng):
        candidates = [rng.randrange(0, tiny.p + 2) for _ in range(200)]
        candidates += [0, 1, 2, tiny.g, tiny.p - 1, tiny.p, tiny.p + 1]
        for x in candidates:
            slow = 1 <= x < tiny.p and pow(x, tiny.q, tiny.p) == 1
            assert tiny.is_element(x) == slow


class TestMultiexp:
    def _pairs(self, group, rng, n, small=False):
        bound = 1 << 16 if small else group.q
        return [
            (group.random_element(rng), rng.randrange(0, bound))
            for _ in range(n)
        ]

    def _naive(self, group, pairs):
        acc = group.identity()
        for base, e in pairs:
            acc = group.mul(acc, group.exp(base, e))
        return acc

    def test_matches_naive_product(self, group, rng):
        for n in (0, 1, 2, 3, 7, 20, 65):
            pairs = self._pairs(group, rng, n)
            assert group.multiexp(pairs) == self._naive(group, pairs)

    def test_small_exponents(self, group, rng):
        pairs = self._pairs(group, rng, 12, small=True)
        assert group.multiexp(pairs) == self._naive(group, pairs)

    def test_duplicate_bases_merge(self, group, rng):
        base = group.random_element(rng)
        pairs = [(base, 5), (base, group.q - 2), (group.g, 7), (group.g, 11)]
        assert group.multiexp(pairs) == self._naive(group, pairs)

    def test_negative_exponents(self, group, rng):
        base = group.random_element(rng)
        pairs = [(base, -3), (group.g, -1)]
        expected = group.mul(
            group.exp(base, group.q - 3), group.exp(group.g, group.q - 1)
        )
        assert group.multiexp(pairs) == expected

    def test_hot_bases_give_same_result(self, group, rng):
        hot = group.random_element(rng)
        pairs = [(hot, group.random_scalar(rng)) for _ in range(3)]
        pairs += self._pairs(group, rng, 5)
        assert group.multiexp(pairs, hot_bases=(hot,)) == self._naive(group, pairs)

    def test_identity_base_and_zero_exponent_skipped(self, group, rng):
        pairs = [(1, 12345), (group.random_element(rng), 0)]
        assert group.multiexp(pairs) == group.identity()

    def test_tiny_group_randomized(self, tiny, rng):
        for _ in range(20):
            pairs = [
                (tiny.random_element(rng), rng.randrange(0, 4 * tiny.q))
                for _ in range(rng.randrange(1, 9))
            ]
            assert tiny.multiexp(pairs) == self._naive(tiny, pairs)


class TestHotBaseBudget:
    def test_within_budget_passes_through(self):
        bases = tuple(range(2, 2 + G.HOT_BASE_BUDGET))
        assert G.hot_bases_within_budget(bases) == bases

    def test_over_budget_returns_empty(self):
        # Over the table-cache budget, marking bases hot would thrash the
        # LRU (build-and-evict per use); the guard falls back to the
        # transient multiexp path.
        bases = range(2, 3 + G.HOT_BASE_BUDGET)
        assert G.hot_bases_within_budget(bases) == ()

    def test_accepts_generators(self):
        assert G.hot_bases_within_budget(iter([5, 7])) == (5, 7)
