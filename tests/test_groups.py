"""Unit tests for Schnorr group arithmetic and message embedding."""

import pytest

from repro.crypto import groups as G
from repro.errors import CryptoError


class TestGroupStructure:
    def test_safe_prime_relation(self):
        for factory in (G.tiny_group, G.testing_group, G.medium_group):
            group = factory()
            assert group.p == 2 * group.q + 1

    def test_generator_in_subgroup(self):
        for factory in (G.tiny_group, G.testing_group, G.production_group):
            group = factory()
            assert group.is_element(group.g)

    def test_generator_has_order_q(self, group):
        assert group.exp(group.g, group.q) == 1
        assert group.exp(group.g, 1) == group.g

    def test_toy_flags(self):
        assert G.testing_group().is_toy
        assert not G.production_group().is_toy
        assert not G.wide_group().is_toy

    def test_identity_membership(self, group):
        assert group.is_element(1)

    def test_non_elements_rejected(self, group):
        assert not group.is_element(0)
        assert not group.is_element(group.p)
        assert not group.is_element(group.p - 1)  # order 2, not in QR subgroup

    def test_require_element_raises(self, group):
        with pytest.raises(CryptoError):
            group.require_element(0)


class TestArithmetic:
    def test_exp_mul_consistency(self, group, rng):
        a, b = group.random_scalar(rng), group.random_scalar(rng)
        lhs = group.exp(group.g, a + b)
        rhs = group.mul(group.exp(group.g, a), group.exp(group.g, b))
        assert lhs == rhs

    def test_inverse(self, group, rng):
        x = group.random_element(rng)
        assert group.mul(x, group.inv(x)) == 1

    def test_exp_reduces_mod_q(self, group, rng):
        e = group.random_scalar(rng)
        assert group.exp(group.g, e) == group.exp(group.g, e + group.q)

    def test_random_element_in_subgroup(self, group, rng):
        for _ in range(10):
            assert group.is_element(group.random_element(rng))

    def test_random_scalar_range(self, group, rng):
        for _ in range(50):
            s = group.random_scalar(rng)
            assert 1 <= s < group.q


class TestEncoding:
    def test_element_bytes_roundtrip(self, group, rng):
        x = group.random_element(rng)
        assert group.element_from_bytes(group.element_to_bytes(x)) == x

    def test_wrong_width_rejected(self, group):
        with pytest.raises(CryptoError):
            group.element_from_bytes(b"\x01")

    def test_non_element_encoding_rejected(self, group):
        bad = (group.p - 1).to_bytes(group.element_bytes, "big")
        with pytest.raises(CryptoError):
            group.element_from_bytes(bad)


class TestMessageEmbedding:
    def test_roundtrip_max_length(self):
        group = G.medium_group()
        message = bytes(range(group.message_bytes))[: group.message_bytes]
        assert group.decode_message(group.encode_message(message)) == message

    def test_roundtrip_short(self):
        group = G.medium_group()
        assert group.decode_message(group.encode_message(b"hi")) == b"hi"

    def test_roundtrip_empty(self):
        group = G.medium_group()
        assert group.decode_message(group.encode_message(b"")) == b""

    def test_leading_zeros_preserved(self):
        group = G.medium_group()
        message = b"\x00\x00\x01"
        assert group.decode_message(group.encode_message(message)) == message

    def test_embedded_is_element(self):
        group = G.medium_group()
        assert group.is_element(group.encode_message(b"test"))

    def test_too_long_rejected(self):
        group = G.medium_group()
        with pytest.raises(CryptoError):
            group.encode_message(b"x" * (group.message_bytes + 1))

    def test_decode_random_element_usually_fails(self, rng):
        group = G.medium_group()
        failures = 0
        for _ in range(8):
            try:
                group.decode_message(group.random_element(rng))
            except CryptoError:
                failures += 1
        assert failures >= 6  # guard byte catches almost everything


class TestFixedBaseExponentiation:
    def test_matches_pow_for_random_exponents(self, group, rng):
        for _ in range(16):
            base = group.random_element(rng)
            e = rng.randrange(0, 2 * group.q)  # includes >q (reduced) cases
            assert group.exp_fixed(base, e) == group.exp(base, e)

    def test_generator_shortcut(self, group, rng):
        e = group.random_scalar(rng)
        assert group.exp_g(e) == group.exp(group.g, e)

    def test_edge_exponents(self, group):
        assert group.exp_fixed(group.g, 0) == 1
        assert group.exp_fixed(group.g, 1) == group.g
        assert group.exp_fixed(group.g, group.q) == 1
        assert group.exp_fixed(group.g, group.q + 3) == group.exp(group.g, 3)

    def test_table_is_cached_per_base(self, group):
        t1 = G._fixed_base_table(group.p, group.q, group.g)
        t2 = G._fixed_base_table(group.p, group.q, group.g)
        assert t1 is t2

    def test_tiny_group_full_sweep(self, tiny):
        for e in range(0, 50):
            assert tiny.exp_fixed(tiny.g, e) == tiny.exp(tiny.g, e)
