"""Smoke tests: the example scripts stay runnable.

Every example exposes ``main(argv) -> int``; the two cheap ones run end to
end here with reduced parameters, the rest are import-checked so a broken
import or signature regression fails fast without paying their multi-minute
runtimes.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "verdict_demo",
        "accusation_demo",
        "anonymous_browsing",
        "consensus_demo",
        "file_sharing",
        "microblog_churn",
        "networked_demo",
        "scaling_study",
    ],
)
def test_example_exposes_main(name):
    module = load_example(name)
    assert callable(module.main)


def test_quickstart_runs_reduced(capsys):
    module = load_example("quickstart")
    assert module.main(["--clients", "6", "--servers", "2"]) == 0
    out = capsys.readouterr().out
    assert "delivered after" in out
    assert "meet at the fountain at noon" in out


def test_networked_demo_runs_reduced(capsys):
    module = load_example("networked_demo")
    assert module.main(["--clients", "5", "--servers", "2", "--rounds", "3"]) == 0
    out = capsys.readouterr().out
    assert "asyncio TCP nodes" in out
    assert "meet at the fountain at noon" in out


def test_consensus_demo_runs_reduced(capsys):
    module = load_example("consensus_demo")
    assert module.main(["--clients", "4", "--rounds", "3"]) == 0
    out = capsys.readouterr().out
    assert "view change" in out
    assert "certified view=1" in out
    assert "restarting from checkpoint" in out


def test_verdict_demo_runs_reduced(capsys):
    module = load_example("verdict_demo")
    assert module.main(["--clients", "5", "--servers", "2"]) == 0
    out = capsys.readouterr().out
    assert "rejected clients" in out
    assert "accusation shuffles: 0" in out
