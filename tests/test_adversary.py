"""Adversarial integration tests: every disruptor class gets caught."""

import random

import pytest

from repro.core import DissentSession
from repro.core.adversary import (
    DisruptorClient,
    DisruptingServer,
    EquivocatingServer,
    RequestJammerClient,
    WithholdingServer,
)
from repro.core.client import DissentClient
from repro.core.server import DissentServer
from repro.core.session import build_keys


def adversarial_session(
    client_adversaries=None, server_adversaries=None, n_servers=3, n_clients=5, seed=11
):
    """Build a session with chosen byzantine node classes."""
    client_adversaries = client_adversaries or {}
    server_adversaries = server_adversaries or {}
    rng = random.Random(seed)
    built = build_keys("test-256", n_servers, n_clients, None, rng)
    servers = []
    for j, key in enumerate(built.server_keys):
        cls, kwargs = server_adversaries.get(j, (DissentServer, {}))
        servers.append(cls(built.definition, j, key, random.Random(j), **kwargs))
    clients = []
    for i, key in enumerate(built.client_keys):
        cls, kwargs = client_adversaries.get(i, (DissentClient, {}))
        clients.append(cls(built.definition, i, key, random.Random(100 + i), **kwargs))
    session = DissentSession(built.definition, servers, clients, rng)
    session.setup()
    return session


def run_until_verdicts(session, max_rounds=14):
    verdicts = []
    for _ in range(max_rounds):
        record = session.run_round()
        if record.shuffle_requested:
            verdicts = session.run_accusation_phase()
            if verdicts:
                break
    return verdicts


class TestDisruptorClient:
    def test_traced_expelled_and_service_restored(self):
        session = adversarial_session({4: (DisruptorClient, {})})
        session.clients[4].target_slot = session.clients[2].slot
        session.post(2, b"the dissident message")
        verdicts = run_until_verdicts(session)
        assert [(v.culprit_kind, v.culprit_index) for v in verdicts] == [("client", 4)]
        assert 4 in session.expelled
        session.clients[4].target_slot = None
        for _ in range(4):
            session.run_round()
        assert b"the dissident message" in [
            m for (_, _, m) in session.clients[0].received
        ]

    def test_victim_detects_disruption(self):
        session = adversarial_session({3: (DisruptorClient, {})}, seed=13)
        session.clients[3].target_slot = session.clients[0].slot
        session.post(0, b"target")
        for _ in range(3):
            session.run_round()
        assert session.clients[0].disruption_detected

    def test_expelled_client_cannot_submit(self):
        session = adversarial_session({4: (DisruptorClient, {})}, seed=14)
        session.clients[4].target_slot = session.clients[1].slot
        session.post(1, b"x")
        run_until_verdicts(session)
        assert 4 in session.expelled
        record = session.run_round()
        assert record.participation == 4  # 5 clients minus the expelled one

    def test_honest_nodes_never_convicted(self):
        session = adversarial_session({2: (DisruptorClient, {})}, seed=15)
        session.clients[2].target_slot = session.clients[4].slot
        session.post(4, b"y")
        verdicts = run_until_verdicts(session)
        for verdict in verdicts:
            assert (verdict.culprit_kind, verdict.culprit_index) == ("client", 2)


class TestRequestJammer:
    def test_randomized_retry_defeats_jammer(self):
        session = adversarial_session({1: (RequestJammerClient, {})}, seed=16)
        session.clients[1].victim_slot = session.clients[3].slot
        session.post(3, b"gets through eventually")
        # §3.8: success probability 1 - (1/2)^t; 12 rounds is plenty.
        for _ in range(12):
            session.run_round()
            if not session.clients[3].has_pending_traffic:
                break
        assert b"gets through eventually" in [
            m for (_, _, m) in session.clients[0].received
        ]


class TestByzantineServers:
    def test_disrupting_server_convicted_case_b(self):
        session = adversarial_session(
            server_adversaries={1: (DisruptingServer, {})}, seed=21
        )
        session.post(0, b"msg")
        session.run_round()
        session.servers[1].target_slot = session.clients[0].slot
        verdicts = run_until_verdicts(session)
        assert any(
            v.culprit_kind == "server" and v.culprit_index == 1 for v in verdicts
        )

    def test_equivocating_server_convicted_by_rebuttal(self):
        class EquivocatingDisrupting(EquivocatingServer, DisruptingServer):
            pass

        session = adversarial_session(
            server_adversaries={2: (EquivocatingDisrupting, {"frame_client": 1})},
            seed=22,
        )
        session.post(0, b"msg")
        session.run_round()
        session.servers[2].target_slot = session.clients[0].slot
        verdicts = run_until_verdicts(session)
        assert any(
            v.culprit_kind == "server" and v.culprit_index == 2 for v in verdicts
        )
        # The framed honest client is never convicted.
        assert not any(v.culprit_kind == "client" for v in verdicts)

    def test_withholding_server_convicted_case_a(self):
        class WithholdingDisrupting(WithholdingServer, DisruptingServer):
            pass

        session = adversarial_session(
            server_adversaries={0: (WithholdingDisrupting, {})}, seed=23
        )
        session.post(3, b"msg")
        session.run_round()
        session.servers[0].target_slot = session.clients[3].slot
        verdicts = run_until_verdicts(session)
        assert any(
            v.culprit_kind == "server" and v.culprit_index == 0 for v in verdicts
        )
        assert 0 in session.convicted_servers
