#!/usr/bin/env python3
"""The accusation process end to end (paper §3.9).

A disruptor client anonymously jams another member's slot.  The victim
finds a witness bit (guaranteed by randomized padding), signals via the
shuffle-request field, transmits a pseudonym-signed accusation through a
verifiable accusation shuffle, and the servers trace the witness bit to
the disruptor — who is expelled without re-forming the group.
"""

import argparse
import random

from repro.core import DissentSession
from repro.core.adversary import DisruptorClient
from repro.core.client import DissentClient
from repro.core.server import DissentServer
from repro.core.session import build_keys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=14)
    args = parser.parse_args(argv)

    rng = random.Random(11)
    built = build_keys("test-256", 3, 6, None, rng)
    servers = [
        DissentServer(built.definition, j, key, random.Random(j))
        for j, key in enumerate(built.server_keys)
    ]
    clients = [
        (DisruptorClient if i == 5 else DissentClient)(
            built.definition, i, key, random.Random(100 + i)
        )
        for i, key in enumerate(built.client_keys)
    ]
    session = DissentSession(built.definition, servers, clients, rng)
    session.setup()

    victim, disruptor = clients[2], clients[5]
    disruptor.target_slot = victim.slot
    print(f"disruptor {disruptor.name} targets slot {victim.slot} "
          f"(owned, unknowably to it, by {victim.name})")

    session.post(2, b"the message they tried to jam")

    for _ in range(args.rounds):
        record = session.run_round()
        if victim.disruption_detected and victim.pending_accusation:
            acc = victim.pending_accusation
            print(f"round {record.round_number}: victim holds witness bit "
                  f"{acc.bit_index} of round {acc.round_number}")
        if record.shuffle_requested:
            print(f"round {record.round_number}: shuffle request seen -> "
                  "running accusation shuffle")
            verdicts = session.run_accusation_phase()
            for verdict in verdicts:
                print(f"  VERDICT: {verdict.culprit_kind} "
                      f"{verdict.culprit_index} — {verdict.reason}")
            if verdicts:
                disruptor.target_slot = None
                break

    print(f"\nexpelled clients: {sorted(session.expelled)}")
    for _ in range(4):
        session.run_round()
    delivered = [m for (_, _, m) in session.delivered_messages(0)]
    assert b"the message they tried to jam" in delivered
    print("message delivered after expulsion:", delivered[-1].decode())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
