#!/usr/bin/env python3
"""Dissent as real networked processes: nodes over localhost TCP.

Builds a 3-server / 8-client group where every node runs behind a real
asyncio TCP socket (or as spawned operating-system processes with
``--processes``): clients submit signed ciphertexts to their upstream
server, servers exchange inventory/commit/reveal/signature envelopes
peer to peer, and certified outputs broadcast back — the same bytes the
in-process session produces, now crossing actual sockets.  Prints
per-round wall-clock latency.
"""

import argparse
import time

from repro.net.runner import NetworkedSession


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=3)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--processes",
        action="store_true",
        help="spawn every node as a real subprocess instead of asyncio tasks",
    )
    args = parser.parse_args(argv)

    mode = "subprocess" if args.processes else "tcp"
    with NetworkedSession.build(
        num_servers=args.servers,
        num_clients=args.clients,
        seed=2012,
        mode=mode,
    ) as session:
        t0 = time.perf_counter()
        session.setup()
        setup_s = time.perf_counter() - t0
        print(
            f"{args.servers} servers + {args.clients} clients up as "
            f"{'processes' if args.processes else 'asyncio TCP nodes'}; "
            f"key shuffle over the wire in {setup_s:.2f}s"
        )
        print("group id:", session.definition.group_id().hex()[:16])

        session.post(2 % args.clients, b"meet at the fountain at noon")
        session.post(5 % args.clients, b"bring the documents")

        print(f"\n{'round':>5} {'status':>10} {'participants':>13} {'latency':>9}")
        for _ in range(args.rounds):
            t0 = time.perf_counter()
            record = session.run_round()
            latency_ms = (time.perf_counter() - t0) * 1e3
            print(
                f"{record.round_number:>5} {record.status.value:>10} "
                f"{record.participation:>13} {latency_ms:>7.1f}ms"
            )

        delivered = session.delivered_messages(0)
        print(f"\ndelivered to client-0 ({len(delivered)} messages):")
        for round_number, slot, message in delivered:
            print(f"  round {round_number}, slot {slot}: {message.decode()}")
        assert any(b"fountain" in m for _, _, m in delivered)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
