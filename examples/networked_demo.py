#!/usr/bin/env python3
"""Dissent as real networked processes: nodes over localhost TCP.

Builds a 3-server / 8-client group where every node runs behind a real
asyncio TCP socket (or as spawned operating-system processes with
``--processes``): clients submit signed ciphertexts to their upstream
server, servers exchange inventory/commit/reveal/signature envelopes
peer to peer, and certified outputs broadcast back — the same bytes the
in-process session produces, now crossing actual sockets.  Prints
per-round wall-clock latency from the session tracer plus the merged
cross-process phase breakdown (paper §6 style).
"""

import argparse
import json
import os

from repro.net.runner import NetworkedSession
from repro.obs.critical import chrome_trace_json, trace_table
from repro.obs.export import phase_table, snapshot_json
from repro.obs.flight import parse_flight_dump


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=3)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--processes",
        action="store_true",
        help="spawn every node as a real subprocess instead of asyncio tasks",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the merged metrics snapshot as JSON (feed to repro.obs.report)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        help=(
            "write the stitched cross-process trace as JSON: the raw span "
            "events (feed to repro.obs.report --trace) plus Chrome "
            "traceEvents loadable in ui.perfetto.dev"
        ),
    )
    parser.add_argument(
        "--health-out",
        metavar="PATH",
        help="write per-node health snapshots as JSON (feed to repro.obs.report --health)",
    )
    parser.add_argument(
        "--flight-out",
        metavar="DIR",
        help="write each node's flight-recorder ring as NDJSON into DIR",
    )
    args = parser.parse_args(argv)

    mode = "subprocess" if args.processes else "tcp"
    with NetworkedSession.build(
        num_servers=args.servers,
        num_clients=args.clients,
        seed=2012,
        mode=mode,
        flight_dir=args.flight_out,
    ) as session:
        tracer = session.tracer
        clock = tracer.clock
        t0 = clock()
        session.setup()
        setup_s = clock() - t0
        print(
            f"{args.servers} servers + {args.clients} clients up as "
            f"{'processes' if args.processes else 'asyncio TCP nodes'}; "
            f"key shuffle over the wire in {setup_s:.2f}s"
        )
        print("group id:", session.definition.group_id().hex()[:16])

        session.post(2 % args.clients, b"meet at the fountain at noon")
        session.post(5 % args.clients, b"bring the documents")

        print(f"\n{'round':>5} {'status':>10} {'participants':>13} {'latency':>9}")
        for _ in range(args.rounds):
            before = len(tracer.events)
            record = session.run_round()
            # The coordinator tracer timed the round span for us.
            round_spans = [
                event
                for event in tracer.events[before:]
                if event.name == "round"
            ]
            latency_ms = round_spans[-1].duration * 1e3
            print(
                f"{record.round_number:>5} {record.status.value:>10} "
                f"{record.participation:>13} {latency_ms:>7.1f}ms"
            )

        delivered = session.delivered_messages(0)
        print(f"\ndelivered to client-0 ({len(delivered)} messages):")
        for round_number, slot, message in delivered:
            print(f"  round {round_number}, slot {slot}: {message.decode()}")
        assert any(b"fountain" in m for _, _, m in delivered)

        snapshot = session.metrics()
        print("\nphase breakdown across all nodes (§6 style):")
        print(phase_table(snapshot))
        sent = snapshot["counters"].get("net.sent.bytes.total", 0)
        frames = snapshot["counters"].get("net.sent.frames.total", 0)
        print(f"\nnode traffic: {frames} frames, {sent} bytes")
        if args.metrics_out:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                handle.write(snapshot_json(snapshot))
            print(f"metrics snapshot written to {args.metrics_out}")
        if args.trace_out:
            events = session.trace_events()
            chrome = json.loads(chrome_trace_json(events))
            artifact = {"events": events, "traceEvents": chrome["traceEvents"]}
            with open(args.trace_out, "w", encoding="utf-8") as handle:
                json.dump(artifact, handle, sort_keys=True, separators=(",", ":"))
            print(f"\nstitched trace ({len(events)} spans) written to {args.trace_out}")
            print(trace_table(events))
        if args.health_out:
            health = session.health()
            with open(args.health_out, "w", encoding="utf-8") as handle:
                json.dump(health, handle, sort_keys=True, indent=1)
            print(f"health snapshots written to {args.health_out}")
        if args.flight_out:
            os.makedirs(args.flight_out, exist_ok=True)
            written = []
            for dump in session.flight_dumps():
                header, _ = parse_flight_dump(dump)
                path = os.path.join(
                    args.flight_out, f"flight-{header['flight']}.ndjson"
                )
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(dump)
                written.append(path)
            print(f"flight rings written: {len(written)} files in {args.flight_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
