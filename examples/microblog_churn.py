#!/usr/bin/env python3
"""Anonymous microblogging under churn (paper §4.2 + §3.6).

A 12-client group posts to a shared feed while clients drop offline and
return between rounds.  Dissent's client/server coin graph means rounds
complete without the offline clients — no restarts — and the published
participation counts track the anonymity set size round by round.

``--mode hybrid`` runs the identical app over Verdict's hybrid DC-net
(``Policy.dcnet_mode``): the feed code does not change, clean rounds stay
on the XOR fast path, and any disruption would be blamed by verifiable
replay instead of an accusation shuffle.
"""

import argparse
import random

from repro.apps import MicroblogFeed
from repro.core import Policy, build_session


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--mode",
        choices=("xor", "hybrid"),
        default="xor",
        help="DC-net pipeline to run the unchanged app over",
    )
    args = parser.parse_args(argv)

    session = build_session(
        num_servers=3,
        num_clients=12,
        seed=7,
        # alpha=0.5: tolerate a 50% participation drop under churn.
        policy=Policy(alpha=0.5, dcnet_mode=args.mode),
    )
    session.setup()
    print(f"dcnet mode: {args.mode} ({type(session).__name__})")
    feed = MicroblogFeed(session)
    rng = random.Random(42)

    posts = [
        (1, "day 14: checkpoints on the north bridge"),
        (4, "confirmed: two checkpoints, avoid after dark"),
        (1, "day 15: they are checking phones now"),
        (9, "use the paper maps from the library"),
    ]

    for author, text in posts:
        feed.post(author, text)
        # Random churn: each client is online with probability 0.8, but
        # the author stays online to transmit.
        for _ in range(3):
            online = {i for i in range(12) if rng.random() < 0.8} | {author}
            feed.run_round(online)
        record = session.records[-1]
        print(
            f"round {record.round_number}: participation={record.participation} "
            f"status={record.status.value}"
        )

    print("\n--- the feed every member reconstructs ---")
    for post in feed.timeline():
        print(f"  [{post.author}] {post.text}")

    print("\nnote: posts by the same author share a slot (pseudonymity),")
    print("but nothing links a slot to a client identity.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
