#!/usr/bin/env python3
"""Byzantine control plane live: leader dies mid-session, session survives.

Builds a 3-server group whose round leadership rotates deterministically,
then walks the crash story end to end:

* a healthy round commits under a full 3-signature quorum certificate;
* the next round's leader crashes at proposal time (it assembled the
  output, then went silent) — the view timer fires on the surviving
  servers, leadership rotates, and the round still commits, certified at
  view 1 by the remaining quorum;
* the crashed server is then killed outright through the chaos harness
  and restarted from its own durable checkpoint, after which rounds
  certify at view 0 with all three signatures again.

Every committed round prints its certificate (view, leader, voters), so
you can watch proposal authority move while the round outputs — which no
leader can influence — stay exactly what the DC-net combined.
"""

import argparse
import tempfile

from repro.consensus import leader_index
from repro.core.adversary import StallingLeader
from repro.core.config import Policy
from repro.net.runner import NetworkedSession

NUM_SERVERS = 3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--rounds", type=int, default=4)
    parser.add_argument("--seed", type=int, default=2012)
    parser.add_argument(
        "--tcp",
        action="store_true",
        help="run the nodes over real localhost TCP sockets",
    )
    args = parser.parse_args(argv)

    # Small retry budget: the surviving servers' view timer fires in
    # ~0.3 s instead of minutes.  The coordinator barrier (timeout=30)
    # stays generous — it must outlast the view change, never race it.
    policy = Policy(
        reconnect_attempts=2, reconnect_base_delay=0.1, reconnect_max_delay=0.2
    )
    mode = "tcp" if args.tcp else "loopback"

    # The rotation is a pure function of public data, so we can compute
    # round 1's leader before the session starts — that is the server we
    # arrange to crash at proposal time.
    with NetworkedSession.build(
        num_servers=NUM_SERVERS,
        num_clients=args.clients,
        seed=args.seed,
        policy=policy,
        mode=mode,
    ) as probe:
        group_id = probe.definition.group_id()
    doomed = leader_index(group_id, 0, 1, 0, NUM_SERVERS)
    print(
        f"leader rotation (epoch 0): "
        f"{[leader_index(group_id, 0, r, 0, NUM_SERVERS) for r in range(args.rounds)]}"
    )
    print(f"server-{doomed} will crash while leading round 1\n")

    view_timer = min(policy.retry_policy().budget(), policy.barrier_timeout)
    with tempfile.TemporaryDirectory() as checkpoints:
        with NetworkedSession.build(
            num_servers=NUM_SERVERS,
            num_clients=args.clients,
            seed=args.seed,
            policy=policy,
            mode=mode,
            timeout=30.0,
            server_factories={doomed: (StallingLeader, {"stall_once": True})},
            checkpoint_dir=checkpoints,
        ) as session:
            session.setup()
            for i in range(args.clients):
                session.post(i, f"message {i} survives the crash".encode())

            records = []
            for r in range(args.rounds):
                if r == 2:
                    # The stalled leader now dies for real; the chaos
                    # harness brings it back from its own checkpoint.
                    victim = session.node_name("server", doomed)
                    session.kill_node("server", doomed)
                    session.wait_dark(victim, timeout=10.0)
                    print(f"  server-{doomed} killed; restarting from checkpoint")
                    session.restart_node("server", doomed)
                    session.wait_live(victim, timeout=10.0)
                record = session.run_round()
                records.append(record)
                cert = record.certificate
                note = ""
                if cert.view > 0:
                    note = (
                        f"  <- view change: leader server-{doomed} silent, "
                        f"timer ({view_timer * 1e3:.0f} ms) rotated to "
                        f"server-{cert.leader}"
                    )
                print(
                    f"round {record.round_number}: certified view={cert.view} "
                    f"leader=server-{cert.leader} "
                    f"voters={[f'server-{j}' for j in cert.voters]}{note}"
                )
                cert.verify(session.definition)

            assert records[1].certificate.view >= 1
            assert records[1].certificate.leader != doomed
            assert all(r.completed for r in records)

            counters = session.metrics()["counters"]
            print(
                f"\nview changes: {counters.get('consensus.views_changed', 0)}, "
                f"certificates formed: {counters.get('consensus.certs_formed', 0)}, "
                f"servers convicted: {counters.get('session.servers_convicted', 0)}"
                " (crashing is not a crime)"
            )
            delivered = session.delivered_messages(0)
            print(f"delivered to client-0 despite the crash: {len(delivered)} messages")
            for round_number, slot, message in delivered[: args.clients]:
                print(f"  round {round_number}, slot {slot}: {message.decode()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
