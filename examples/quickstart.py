#!/usr/bin/env python3
"""Quickstart: anonymous group messaging in a few lines.

Builds a 3-server / 8-client Dissent group with real cryptography, runs
the scheduling key shuffle, posts two anonymous messages, and shows that
every member receives them attributed only to pseudonymous slots.
"""

import argparse

from repro.core import DissentSession


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=3)
    parser.add_argument("--clients", type=int, default=8)
    args = parser.parse_args(argv)

    # 1. Create a group: fresh keys, anytrust servers, static membership.
    session = DissentSession.build(
        num_servers=args.servers, num_clients=args.clients, seed=2012
    )

    # 2. The verifiable key shuffle assigns every client a secret slot.
    session.setup()
    print("group id:", session.definition.group_id().hex()[:16])
    print("slots assigned (secret to everyone but the owner):")
    for client in session.clients:
        print(f"  {client.name} -> slot {client.slot}")

    # 3. Two clients queue anonymous messages.
    session.post(2 % args.clients, b"meet at the fountain at noon")
    session.post(5 % args.clients, b"bring the documents")

    # 4. Run DC-net rounds until delivery (request bit -> slot -> send).
    outcome = session.run_until_quiet()
    assert outcome.drained, "traffic still queued after the round budget"
    print(f"\ndelivered after {outcome.rounds_used} rounds")

    # 5. Every member sees the same messages, attributed to slots only.
    for round_number, slot, message in session.delivered_messages(0):
        print(f"  round {round_number}, slot {slot}: {message.decode()}")

    participation = session.records[-1].participation
    print(f"\nlast round participation count: {participation} (published, §3.7)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
