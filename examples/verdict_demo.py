#!/usr/bin/env python3
"""Verdict-style verifiable DC-nets: proactive and hybrid accountability.

Part 1 — fully verifiable mode: every ciphertext carries a disjunctive
proof of well-formedness; a disruptor's garbage fails verification and
names its sender in the same round, with no accusation machinery.

Part 2 — hybrid mode: rounds run on the cheap XOR fast path; a corrupted
round is detected publicly (the padding check fails for everyone), then
replayed in verifiable mode against the archived round to reconstruct the
true slot bytes and trace the disruptor — skipping the §3.9 accusation
shuffle entirely.
"""

import argparse
from functools import partial


def verifiable_demo(num_servers: int, num_clients: int) -> None:
    from repro.verdict.session import DisruptingVerdictClient, VerdictSession

    print("--- fully verifiable mode: disruptor named in-round ---")
    disruptor_index = num_clients - 1
    session = VerdictSession.build(
        num_servers=num_servers,
        num_clients=num_clients,
        seed=42,
        slot_payload=48,
        client_factories={disruptor_index: partial(DisruptingVerdictClient)},
    )
    session.post(1, b"a message worth jamming")
    record = session.run_round()
    print(f"round {record.round_number}: rejected clients "
          f"{list(record.rejected_clients)} (proof verification failed)")
    outcome = session.run_until_quiet()
    assert outcome.drained
    for round_number, slot, message in session.delivered_messages(0):
        print(f"  round {round_number}, slot {slot}: {message.decode()}")
    counters = session.total_counters()
    print(f"proofs made: {counters.client_proofs_made}, checked: "
          f"{counters.client_proofs_checked} (one batched multi-exp per "
          f"round), rejected submissions: {counters.rejected_submissions}")


def hybrid_demo(num_servers: int, num_clients: int) -> None:
    from repro.verdict.hybrid import build_hybrid_with_disruptor

    print("\n--- hybrid mode: XOR fast path + verifiable replay ---")
    session, victim_slot = build_hybrid_with_disruptor(
        num_servers=num_servers,
        num_clients=num_clients,
        disruptor_index=num_clients - 2,
        victim_index=1,
        seed=33,
        flips_per_round=3,
    )
    print(f"disruptor client-{num_clients - 2} jams slot {victim_slot} "
          "(owned, unknowably to it, by client-1)")
    session.post(1, b"the hybrid path protects this")
    for _ in range(12):
        session.run_round()
        if session.blames and session.blames[-1].status == "blamed":
            break
    blame = session.blames[-1]
    print(f"round {blame.round_number}: corruption publicly visible, "
          "verifiable replay ran")
    print(f"  witness bit {blame.witness_bit}, culprits "
          f"{list(blame.client_culprits)} — expelled without any "
          "accusation shuffle")
    session.run_until_quiet()
    delivered = [m for (_, _, m) in session.delivered_messages(0)]
    print("delivered after expulsion:", delivered[-1].decode())
    counters = session.hybrid_counters
    print(f"fast rounds: {counters.fast_rounds}, corrupted: "
          f"{counters.corrupted_rounds}, accusation shuffles: "
          f"{counters.accusation_shuffles}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--servers", type=int, default=3)
    parser.add_argument("--clients", type=int, default=6)
    args = parser.parse_args(argv)
    verifiable_demo(args.servers, max(3, args.clients))
    hybrid_demo(args.servers, max(4, args.clients))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
