#!/usr/bin/env python3
"""Anonymous bulk file sharing (the paper's 128 KB data-sharing workload).

One client anonymously publishes a 24 KB file; every group member
reassembles it from the sender's slot, which grows via the length field
(§3.8) and shrinks back when the transfer completes.
"""

import argparse
import hashlib

from repro.apps import FileSharingApp
from repro.core import DissentSession, Policy


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--kilobytes", type=int, default=24)
    args = parser.parse_args(argv)

    session = DissentSession.build(
        num_servers=3, num_clients=4, seed=9, policy=Policy(alpha=0.0)
    )
    session.setup()
    app = FileSharingApp(session, chunk_payload=2048)

    data = hashlib.shake_256(b"demo corpus").digest(args.kilobytes * 1024)
    file_id = app.share(1, data)
    print(f"client-1 shares {len(data)} bytes anonymously (file {file_id.hex()})")

    received = app.run_until_complete(file_id, max_rounds=48)
    assert received == data
    rounds = len(session.records)
    print(f"all {len(session.clients)} members reassembled the file "
          f"after {rounds} rounds")

    capacities = [r.output.cleartext and len(r.output.cleartext) for r in session.records if r.output]
    print(f"round sizes grew from {min(capacities)} to {max(capacities)} bytes "
          "as the slot expanded, then shrank back")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
