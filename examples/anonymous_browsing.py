#!/usr/bin/env python3
"""WiNoN anonymous web browsing (paper §4.3, §5.4).

Part 1 — functional: fetch a page through the real SOCKS-like tunnel over
a real-crypto Dissent session (entry node, exit node, flow ids).

Part 2 — performance: model the paper's four Figure 10 configurations
(direct / Tor / local-area Dissent / Dissent+Tor) over the synthetic
Alexa Top-100 corpus, inside the WiNoN isolation boundary.
"""

import argparse
import statistics

from repro.apps import (
    TunnelEntry,
    TunnelExit,
    WiNoNEnvironment,
    browse_corpus,
    dissent_tor_path,
    fetch_through_tunnel,
    generate_top100,
    seconds_per_megabyte,
    standard_paths,
)
from repro.core import DissentSession, Policy


def tunnel_demo() -> None:
    print("--- functional tunnel over real DC-net rounds ---")
    session = DissentSession.build(
        num_servers=3, num_clients=5, seed=3, policy=Policy(alpha=0.0)
    )
    session.setup()

    def website(request: bytes) -> bytes:
        return b"<html>you asked for: " + request + b"</html>"

    entry = TunnelEntry(session, client_index=0)
    exit_node = TunnelExit(session, client_index=4,
                           destinations={"news.example:80": website})
    response = fetch_through_tunnel(
        session, entry, exit_node, "news.example:80", b"GET /headlines"
    )
    print("anonymous response:", response.decode())


def browsing_study() -> None:
    print("\n--- Figure 10 style study over the synthetic Top-100 ---")
    pages = generate_top100()
    for path in standard_paths():
        times = browse_corpus(pages, path)
        print(f"{path.name:12s} mean={statistics.mean(times):5.1f}s  "
              f"median={statistics.median(times):5.1f}s  "
              f"s/MB={seconds_per_megabyte(pages, times):5.1f}")

    print("\n--- WiNoN isolation boundary ---")
    env = WiNoNEnvironment(dissent_tor_path())
    elapsed = env.fetch(pages[0])
    print(f"fetch {pages[0].name} through the VM tunnel: {elapsed:.1f}s")
    for action in ("open_direct_socket", "read_host_state"):
        try:
            getattr(env, action)("tracker.example" if "socket" in action else "cookies")
        except Exception as exc:
            print(f"{action}: BLOCKED ({type(exc).__name__})")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.parse_args(argv)
    tunnel_demo()
    browsing_study()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
