#!/usr/bin/env python3
"""Paper-scale performance study: regenerate all six evaluation figures.

Runs the simulated-mode experiment behind every figure in the paper's §5
and prints the tables EXPERIMENTS.md records.  Takes a couple of minutes.
"""

import argparse

from repro.bench import ablations, fig6, fig7, fig8, fig9, fig10, fig11


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.parse_args(argv)

    for module in (fig6, fig7, fig8, fig9, fig10, fig11):
        print(module.run().table())
        print()
    print(ablations.secret_graph_ablation().table())
    print()
    print(ablations.topology_ablation().table())
    print()
    print(ablations.churn_restart_ablation().table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
